package experiments

import (
	"fmt"
	"io"

	"repro/internal/energy"
	"repro/internal/isaac"
	"repro/internal/mapping"
	"repro/internal/models"
)

// AblationResult is a generic named-ratio study.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// AblationRow is one variant's outcome.
type AblationRow struct {
	Name   string
	Value  float64
	Detail string
}

// Render writes the study.
func (r AblationResult) Render(w io.Writer) {
	fmt.Fprintln(w, r.Title)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-34s %10.4g  %s\n", row.Name, row.Value, row.Detail)
	}
}

// AblationNUHierarchy quantifies the value of current-domain aggregation:
// VGG-13 energy with the NU hierarchy versus a variant where every
// crossbar boundary is digitized ISAAC-style (every layer forced onto the
// ADC path).
func AblationNUHierarchy() AblationResult {
	em := energy.NewModel()
	w := models.FullVGG13(10, 300, 91.60, 90.05)
	np := mapping.MapWorkload(w)
	baseline := em.ANNNetwork(np).EnergyJ

	// Force the ADC path: every multi-AC layer digitizes per-AC partial
	// sums (conversions = kernels × stack), paying the reduction stages.
	forced := np
	forced.Placements = append([]mapping.Placement(nil), np.Placements...)
	for i := range forced.Placements {
		p := &forced.Placements[i]
		if p.ACsUsed == 0 || p.StackHeight <= 1 {
			continue
		}
		p.Level = mapping.LevelADC
		p.ADCConversionsPerEval = p.Layer.Kernels() * p.StackHeight
	}
	noHierarchy := em.ANNNetwork(forced).EnergyJ

	return AblationResult{
		Title: "Ablation — NU-hierarchy current summation vs per-crossbar ADC (VGG-13, ANN mode)",
		Rows: []AblationRow{
			{"with NU hierarchy (µJ)", baseline * 1e6, "partial sums aggregated in current domain"},
			{"per-crossbar ADC (µJ)", noHierarchy * 1e6, "every array boundary digitized"},
			{"energy ratio", noHierarchy / baseline, "paid for abandoning analog aggregation"},
		},
	}
}

// AblationMorphableTiles compares synapse utilization of the morphable
// mapping against rigid 128×128 and 256×256 arrays on MobileNet, whose
// mixed kernel sizes are the design's motivating case (§IV-B2).
func AblationMorphableTiles() AblationResult {
	w := models.FullMobileNetV1(10, 500, 91.00, 81.08)
	morph := mapping.MapWorkload(w).MeanUtilization()
	util := func(n int) float64 {
		var used, total float64
		for _, l := range w.WeightedLayers() {
			fp := mapping.MapFixed(l, n)
			cells := float64(fp.ArraysUsed) * float64(n) * float64(n)
			used += fp.Utilization * cells
			total += cells
		}
		return used / total
	}
	return AblationResult{
		Title: "Ablation — morphable tiles vs fixed arrays (MobileNet-v1 synapse utilization)",
		Rows: []AblationRow{
			{"morphable (128..2048 rows)", morph, "stack height follows Rf"},
			{"fixed 128×128", util(128), ""},
			{"fixed 256×256", util(256), ""},
		},
	}
}

// AblationMembraneStorage isolates NEBULA's in-device membrane storage:
// VGG SNN energy as-is versus a variant charged an INXS-style SRAM
// read/add/write plus digitization per neuron per timestep.
func AblationMembraneStorage() AblationResult {
	em := energy.NewModel()
	w := models.FullVGG13(10, 300, 91.60, 90.05)
	np := mapping.MapWorkload(w)
	act := energy.DefaultActivity(w, energy.DefaultInputRate)
	base := em.SNNNetwork(np, w.Timesteps, act).EnergyJ

	// SRAM membrane penalty: per neuron per timestep, one ADC conversion
	// plus read + add + write (the INXS cost structure, §III).
	const perUpdateJ = (2.7 + 2.5 + 0.2 + 3.0) * 1e-12
	penalty := 0.0
	for _, l := range w.WeightedLayers() {
		penalty += float64(l.OutputNeurons()) * float64(w.Timesteps) * perUpdateJ
	}
	return AblationResult{
		Title: "Ablation — in-device membrane storage vs SRAM round-trips (VGG-13, SNN mode)",
		Rows: []AblationRow{
			{"domain-wall membranes (µJ)", base * 1e6, "state persists in the neuron device"},
			{"SRAM membranes (µJ)", (base + penalty) * 1e6, "read+add+write+ADC per neuron per step"},
			{"energy ratio", (base + penalty) / base, "cost of externalizing membrane state"},
		},
	}
}

// AblationBitSerialInput isolates the multi-level-driver decision (§V-C):
// NEBULA ANN energy versus a bit-serial variant that feeds 4-bit inputs
// one bit per cycle (4× the evaluations with 1-bit drivers at roughly a
// quarter of the DAC power).
func AblationBitSerialInput() AblationResult {
	em := energy.NewModel()
	w := models.FullVGG13(10, 300, 91.60, 90.05)
	np := mapping.MapWorkload(w)
	base := em.ANNNetwork(np)

	serial := energy.NewModel()
	serial.S.ANNDACPowerW /= 4 // 1-bit drivers
	serialNp := np
	serialNp.Placements = append([]mapping.Placement(nil), np.Placements...)
	for i := range serialNp.Placements {
		serialNp.Placements[i].Evaluations *= 4 // one bit per cycle
	}
	bitSerial := serial.ANNNetwork(serialNp)

	return AblationResult{
		Title: "Ablation — multi-level drivers vs bit-serial input feeding (VGG-13, ANN mode)",
		Rows: []AblationRow{
			{"multi-level drivers (µJ)", base.EnergyJ * 1e6, "single evaluation per output"},
			{"bit-serial 1-bit DACs (µJ)", bitSerial.EnergyJ * 1e6, "4 cycles per evaluation"},
			{"energy ratio", bitSerial.EnergyJ / base.EnergyJ, "cost of bit-serial feeding"},
			{"latency ratio", bitSerial.TimeS / base.TimeS, ""},
		},
	}
}

// AblationHybridSplit sweeps the hybrid split point at a fixed window,
// reporting the energy/power frontier of §V-B.
func AblationHybridSplit() AblationResult {
	em := energy.NewModel()
	w := models.FullVGG13(10, 300, 91.60, 90.05)
	np := mapping.MapWorkload(w)
	act := energy.DefaultActivity(w, energy.DefaultInputRate)
	const T = 150
	out := AblationResult{Title: "Ablation — hybrid split sweep (VGG-13, T=150)"}
	for k := 1; k <= 9; k += 2 {
		h := em.HybridNetwork(np, T, k, act)
		out.Rows = append(out.Rows, AblationRow{
			fmt.Sprintf("Hyb-%d energy (µJ)", k), h.EnergyJ * 1e6,
			fmt.Sprintf("avg power %.2f mW", h.AvgPowerW*1e3),
		})
	}
	return out
}

// AblationISAACADCScaling shows how the baseline comparison depends on the
// ISAAC ADC energy assumption, documenting the calibration sensitivity.
func AblationISAACADCScaling() AblationResult {
	em := energy.NewModel()
	w := models.FullVGG13(10, 300, 91.60, 90.05)
	np := mapping.MapWorkload(w)
	ann := em.ANNNetwork(np).EnergyJ
	out := AblationResult{Title: "Ablation — ISAAC/NEBULA ratio vs ISAAC ADC energy assumption (VGG-13)"}
	for _, pj := range []float64{1, 2, 3, 5, 8} {
		im := isaac.NewModel()
		im.P.ADCEnergyPerConvJ = pj * 1e-12
		out.Rows = append(out.Rows, AblationRow{
			fmt.Sprintf("ADC %.0f pJ/conv", pj),
			im.NetworkTotal(w) / ann,
			"ISAAC energy ÷ NEBULA-ANN energy",
		})
	}
	return out
}
