package experiments

import (
	"fmt"
	"io"

	"repro/internal/convert"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/models"
	"repro/internal/replay"
	"repro/internal/rng"
	"repro/internal/snn"
)

// PowerProfileResult is the trace-driven instantaneous power study: the
// per-timestep chip power of one spiking inference, the temporal
// counterpart of the Fig. 14 peak-vs-average discussion.
type PowerProfileResult struct {
	Model          string
	Timesteps      int
	StepPowerW     []float64
	MeanPowerW     float64
	PeakStepPowerW float64
	EnergyJ        float64
	Prediction     int
	Label          int
}

// PowerProfile trains the scaled LeNet, records a spike trace of one test
// image and replays it through the energy model.
func PowerProfile(T int) (PowerProfileResult, error) {
	tm := trainScaled(benchmarkSpec{"lenet5/mnist-like", models.NewLeNet5, dataset.MNISTLike, 6, 0}, 300, 80)
	conv, err := convert.Convert(tm.net, tm.trainDS, convert.DefaultConfig())
	if err != nil {
		return PowerProfileResult{}, fmt.Errorf("profile: %w", err)
	}
	w, err := models.FromNetwork("lenet5-scaled", tm.net, 1, 16, 16)
	if err != nil {
		return PowerProfileResult{}, fmt.Errorf("profile: %w", err)
	}
	img, label := tm.testDS.Sample(0)
	res, tr := conv.SNN.RunTraced(img, T, snn.NewPoissonEncoder(1.0, rng.New(Seed)))

	m := energy.NewModel()
	m.SNNParallelism = 1
	rep, err := replay.Replay(m, w, tr)
	if err != nil {
		return PowerProfileResult{}, fmt.Errorf("profile: %w", err)
	}
	return PowerProfileResult{
		Model: tm.name, Timesteps: T,
		StepPowerW:     rep.StepPowerW,
		MeanPowerW:     rep.MeanPowerW,
		PeakStepPowerW: rep.PeakStepPowerW,
		EnergyJ:        rep.EnergyJ,
		Prediction:     res.Predict(),
		Label:          label,
	}, nil
}

// Render writes the profile.
func (r PowerProfileResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Trace-driven power profile (%s, T=%d): predicted %d (true %d)\n",
		r.Model, r.Timesteps, r.Prediction, r.Label)
	fmt.Fprintf(w, "  energy %.3f µJ, mean %.3f mW, peak step %.3f mW (ratio %.2f)\n",
		r.EnergyJ*1e6, r.MeanPowerW*1e3, r.PeakStepPowerW*1e3, r.PeakStepPowerW/r.MeanPowerW)
	stride := len(r.StepPowerW) / 15
	if stride < 1 {
		stride = 1
	}
	for t := 0; t < len(r.StepPowerW); t += stride {
		fmt.Fprintf(w, "  t=%3d %8.4f mW %s\n", t, r.StepPowerW[t]*1e3,
			bar(r.StepPowerW[t], r.PeakStepPowerW, 36))
	}
}
