package experiments

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestServeSmoke is the serve-smoke gate `make serve-smoke` runs under
// -race: the smoke-scale load study must serve the same request
// sequence bitwise identically at every batch shape — solo and
// coalesced — proving batch shape is invisible to the arithmetic. The
// smoke config is clock-free, so the record's load phase is absent and
// everything asserted here is deterministic.
func TestServeSmoke(t *testing.T) {
	cfg := SmokeServeConfig()
	res, err := ServeStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shapes) != len(cfg.BatchShapes) {
		t.Fatalf("%d shape outcomes, want %d", len(res.Shapes), len(cfg.BatchShapes))
	}
	coalesced := false
	for _, s := range res.Shapes {
		if s.Mismatched != 0 || s.BitwiseMatches != cfg.Requests {
			t.Fatalf("shape batch=%d not bitwise clean: %+v", s.BatchSize, s)
		}
		if s.Batches < 1 {
			t.Fatalf("shape batch=%d dispatched no batches", s.BatchSize)
		}
		if s.BatchSize > 1 && s.Batches < int64(cfg.Requests) {
			coalesced = true
		}
	}
	if !coalesced {
		t.Fatal("no multi-request shape ever coalesced — the study is not load-bearing")
	}
	if len(res.Levels) != 0 || res.SaturationRPS != 0 {
		t.Fatalf("clock-free smoke produced a load phase: %+v", res.Levels)
	}

	var b bytes.Buffer
	res.Render(&b)
	for _, want := range []string{"Serve load study", "shape batch=", "bitwise"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, b.String())
		}
	}
}

// TestServeLoadPhase exercises the open-loop load phase with a fake
// monotonic clock: each read advances the clock 1 µs, and the offered
// rates are set so high that no pacing sleep ever fires — the phase
// runs at full machine speed while still producing real latency and
// throughput figures from the injected clock.
func TestServeLoadPhase(t *testing.T) {
	cfg := SmokeServeConfig()
	cfg.BatchShapes = []int{1}
	cfg.Requests = 2
	cfg.OfferedLoads = []float64{1e9, 2e9}
	cfg.RequestsPerLevel = 6
	var tick atomic.Int64
	cfg.Now = func() int64 { return tick.Add(int64(time.Microsecond)) }

	res, err := ServeStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != len(cfg.OfferedLoads) {
		t.Fatalf("%d load levels, want %d", len(res.Levels), len(cfg.OfferedLoads))
	}
	for _, l := range res.Levels {
		if l.Served+l.RejectedQueueFull+l.Failed != cfg.RequestsPerLevel {
			t.Fatalf("level %.0f rps: outcomes do not partition the sequence: %+v", l.OfferedRPS, l)
		}
		if l.Served == 0 {
			t.Fatalf("level %.0f rps served nothing: %+v", l.OfferedRPS, l)
		}
		if l.P50NS <= 0 || l.P99NS < l.P50NS {
			t.Fatalf("level %.0f rps: order statistics inconsistent: p50 %d p99 %d",
				l.OfferedRPS, l.P50NS, l.P99NS)
		}
		if l.AchievedRPS <= 0 {
			t.Fatalf("level %.0f rps: achieved rate %v", l.OfferedRPS, l.AchievedRPS)
		}
		if l.BatchFill.Count < 1 || l.BatchFill.Sum != int64(l.Served) {
			t.Fatalf("level %.0f rps: fill histogram %d batches sum %d, want sum %d",
				l.OfferedRPS, l.BatchFill.Count, l.BatchFill.Sum, l.Served)
		}
	}
	if res.SaturationRPS <= 0 {
		t.Fatalf("saturation rate %v", res.SaturationRPS)
	}

	var b bytes.Buffer
	res.Render(&b)
	for _, want := range []string{"load", "throughput at saturation"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, b.String())
		}
	}
}

// TestOrderStat pins the nearest-rank convention.
func TestOrderStat(t *testing.T) {
	if got := orderStat(nil, 0.5); got != 0 {
		t.Fatalf("empty sample: %d, want 0", got)
	}
	s := []int64{10, 20, 30, 40}
	if got := orderStat(s, 0.0); got != 10 {
		t.Fatalf("q=0: %d, want 10", got)
	}
	if got := orderStat(s, 0.5); got != 20 {
		t.Fatalf("q=0.5: %d, want 20", got)
	}
	if got := orderStat(s, 1.0); got != 40 {
		t.Fatalf("q=1: %d, want 40", got)
	}
}

// TestDefaultServeConfig sanity-checks the published study shape.
func TestDefaultServeConfig(t *testing.T) {
	cfg := DefaultServeConfig()
	if cfg.Replicas < 1 || cfg.BatchSize < 1 || cfg.QueueDepth < cfg.BatchSize {
		t.Fatalf("default config not serveable: %+v", cfg)
	}
	if len(cfg.BatchShapes) == 0 || len(cfg.OfferedLoads) == 0 {
		t.Fatalf("default config has empty phases: %+v", cfg)
	}
	if cfg.Now != nil {
		t.Fatal("default config must be clock-free until cmd/ injects one")
	}
}
