//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector. Training the benchmark models is 10-20x slower under race
// instrumentation and exceeds the package test timeout, so the heavy
// trained-model tests skip themselves; the race run still covers every
// analytic experiment and the concurrency-sensitive packages directly.
const raceEnabled = true
