package experiments

import (
	"fmt"
	"io"

	"repro/internal/energy"
	"repro/internal/inxs"
	"repro/internal/isaac"
	"repro/internal/mapping"
	"repro/internal/models"
)

// SensitivityRow records how a headline ratio moves when one model knob is
// scaled to 0.5× and 2× its default.
type SensitivityRow struct {
	Knob     string
	Low      float64 // ratio at 0.5× knob
	Baseline float64
	High     float64 // ratio at 2× knob
	// Span is max/min across the three points — the knob's leverage.
	Span float64
}

// SensitivityResult is a tornado-style robustness study of the calibrated
// energy model: it shows which assumptions the headline comparisons
// actually depend on, and by how much.
type SensitivityResult struct {
	Headline string
	Rows     []SensitivityRow
}

// Render writes the study.
func (r SensitivityResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Sensitivity — %s vs model assumptions (0.5×/1×/2× each knob)\n", r.Headline)
	fmt.Fprintln(w, "  knob                        0.5×      1×      2×     span")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-26s %6.2f  %6.2f  %6.2f  %6.2f\n",
			row.Knob, row.Low, row.Baseline, row.High, row.Span)
	}
}

// SensitivitySNNvsANN sweeps the SNN-mode knobs and reports their effect
// on the VGG E_SNN/E_ANN ratio.
func SensitivitySNNvsANN() SensitivityResult {
	w := models.FullVGG13(10, 300, 91.60, 90.05)
	np := mapping.MapWorkload(w)
	act := energy.DefaultActivity(w, energy.DefaultInputRate)

	ratio := func(mutate func(*energy.Model)) float64 {
		m := energy.NewModel()
		if mutate != nil {
			mutate(m)
		}
		return m.SNNNetwork(np, w.Timesteps, act).EnergyJ / m.ANNNetwork(np).EnergyJ
	}
	base := ratio(nil)

	knobs := []struct {
		name  string
		scale func(m *energy.Model, f float64)
	}{
		{"SNNStaticFraction", func(m *energy.Model, f float64) { m.SNNStaticFraction *= f }},
		{"SpikeGating", func(m *energy.Model, f float64) { m.SpikeGating *= f }},
		{"EDRAMAccessJ", func(m *energy.Model, f float64) { m.EDRAMAccessJ *= f }},
		{"AERBits", func(m *energy.Model, f float64) { m.AERBits = int(float64(m.AERBits) * f) }},
		{"ADCPathOverhead", func(m *energy.Model, f float64) { m.ADCPathOverhead *= f }},
		{"InputActivity", func(m *energy.Model, f float64) {}}, // handled below
	}

	res := SensitivityResult{Headline: "E_SNN/E_ANN (VGG-13)"}
	for _, k := range knobs {
		var low, high float64
		if k.name == "InputActivity" {
			lowAct := energy.DefaultActivity(w, energy.DefaultInputRate*0.5)
			highAct := energy.DefaultActivity(w, minf(1, energy.DefaultInputRate*2))
			m := energy.NewModel()
			low = m.SNNNetwork(np, w.Timesteps, lowAct).EnergyJ / m.ANNNetwork(np).EnergyJ
			high = m.SNNNetwork(np, w.Timesteps, highAct).EnergyJ / m.ANNNetwork(np).EnergyJ
		} else {
			low = ratio(func(m *energy.Model) { k.scale(m, 0.5) })
			high = ratio(func(m *energy.Model) { k.scale(m, 2) })
		}
		row := SensitivityRow{Knob: k.name, Low: low, Baseline: base, High: high}
		row.Span = maxf3(low, base, high) / minf3(low, base, high)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// SensitivityBaselines sweeps the baseline-model knobs and reports their
// effect on the two cross-accelerator headlines.
func SensitivityBaselines() SensitivityResult {
	w := models.FullVGG13(10, 300, 91.60, 90.05)
	np := mapping.MapWorkload(w)
	act := energy.DefaultActivity(w, energy.DefaultInputRate)
	em := energy.NewModel()
	annE := em.ANNNetwork(np).EnergyJ
	snnE := em.SNNNetwork(np, w.Timesteps, act).EnergyJ

	res := SensitivityResult{Headline: "baseline ratios (VGG-13)"}

	isaacRatio := func(f float64) float64 {
		im := isaac.NewModel()
		im.P.ADCEnergyPerConvJ *= f
		return im.NetworkTotal(w) / annE
	}
	res.Rows = append(res.Rows, spanRow("ISAAC ADC energy → ISAAC/ANN",
		isaacRatio(0.5), isaacRatio(1), isaacRatio(2)))

	inxsRatio := func(f float64) float64 {
		xm := inxs.NewModel()
		xm.P.SRAMReadJ *= f
		xm.P.SRAMWriteJ *= f
		return xm.NetworkTotal(w, w.Timesteps, act) / snnE
	}
	res.Rows = append(res.Rows, spanRow("INXS SRAM energy → INXS/SNN",
		inxsRatio(0.5), inxsRatio(1), inxsRatio(2)))

	inxsADC := func(f float64) float64 {
		xm := inxs.NewModel()
		xm.P.ADCEnergyPerConvJ *= f
		return xm.NetworkTotal(w, w.Timesteps, act) / snnE
	}
	res.Rows = append(res.Rows, spanRow("INXS ADC energy → INXS/SNN",
		inxsADC(0.5), inxsADC(1), inxsADC(2)))

	return res
}

func spanRow(name string, low, base, high float64) SensitivityRow {
	return SensitivityRow{
		Knob: name, Low: low, Baseline: base, High: high,
		Span: maxf3(low, base, high) / minf3(low, base, high),
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf3(a, b, c float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}

func minf3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}
