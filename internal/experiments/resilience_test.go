package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/fleet"
)

// TestResilienceSmoke is the chaos-smoke gate `make chaos-smoke` runs
// under -race: the seeded storm at smoke scale must leave the pool at
// full availability with every served output bitwise identical to the
// undisturbed baseline, while the unpooled victim silently diverges.
// It deliberately does NOT skip under the race detector — exercising
// the pool's locking under fire is the point — so the model it trains
// is the small smoke shape.
func TestResilienceSmoke(t *testing.T) {
	cfg := SmokeResilienceConfig()
	res, err := ResilienceStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := cfg.Waves * cfg.RequestsPerWave
	if len(res.Events) != cfg.Waves {
		t.Fatalf("storm has %d events, want %d", len(res.Events), cfg.Waves)
	}
	if res.Pool.Served != total || res.Pool.Failed != 0 {
		t.Fatalf("pool availability broke under the smoke storm: %+v", res.Pool)
	}
	if res.Pool.Availability < 0.99 {
		t.Fatalf("pool availability %.4f below the 99%% bar", res.Pool.Availability)
	}
	if res.Pool.Mismatched != 0 || res.Pool.BitwiseMatches != res.Pool.Served {
		t.Fatalf("pool results not bitwise identical to baseline: %+v", res.Pool)
	}
	if res.Pool.Accuracy != res.BaselineAccuracy {
		t.Fatalf("pool accuracy %.4f != baseline %.4f despite bitwise identity",
			res.Pool.Accuracy, res.BaselineAccuracy)
	}
	// The storm must have actually exercised the maintenance machinery.
	if res.Pool.Fleet.Retirements == 0 || res.Pool.Fleet.ScrubCycles == 0 {
		t.Fatalf("smoke storm exercised no maintenance: %+v", res.Pool.Fleet)
	}
	// The unpooled victim absorbs the same physical storm on one chip:
	// it keeps serving (smoke is below its terminal dose) but its
	// outputs silently drift off the baseline bits.
	if res.Victim.Mismatched == 0 {
		t.Fatalf("victim never diverged — the storm is not load-bearing: %+v", res.Victim)
	}

	var b bytes.Buffer
	res.Render(&b)
	for _, want := range []string{"Resilience chaos study", "pooled:", "unpooled:", "storm:"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, b.String())
		}
	}
}

// TestResilienceStormDeterministic pins the study's storm schedule: the
// record's event list is a pure function of the chaos seed.
func TestResilienceStormDeterministic(t *testing.T) {
	cfg := SmokeResilienceConfig()
	a := fleet.Storm(cfg.ChaosSeed, fleet.StormConfig{Waves: cfg.Waves, Replicas: cfg.Replicas})
	b := fleet.Storm(cfg.ChaosSeed, fleet.StormConfig{Waves: cfg.Waves, Replicas: cfg.Replicas})
	if len(a) != len(b) {
		t.Fatalf("storm lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("storm event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
