package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// This file is the chaos study behind `nebula-bench -exp resilience`:
// the same seeded fault storm is replayed against a health-aware
// session pool and against an unpooled single session, and both are
// measured against an undisturbed golden baseline. The claims under
// test: the pool keeps serving (≥99% success) with every served result
// bitwise identical to the baseline, while the unpooled session
// accumulates stuck devices until its scrub trips the degradation
// policy and the service goes terminally dark.

// ResilienceConfig parameterizes the chaos study.
type ResilienceConfig struct {
	// Replicas is the pool size; Waves × RequestsPerWave the request
	// load (one chaos event lands per wave).
	Replicas        int
	Waves           int
	RequestsPerWave int
	// Timesteps is the SNN evidence window per request.
	Timesteps int
	// ChaosSeed seeds the fault storm.
	ChaosSeed uint64
	// StuckFraction is the per-device stuck-onset fraction per event.
	// Stuck devices only surface as residual faults when their frozen
	// level deviates from the programmed target (roughly a third of
	// them on the study model), so the default (0.06) is sized to push
	// an unpooled chip past the 2% default degradation policy after a
	// couple of onsets.
	StuckFraction float64
	// DriftSteps is the drift-burst magnitude (default 20000).
	DriftSteps int64
	// NTrain / NTest size the synthetic dataset.
	NTrain, NTest int
	// Deadline, when positive, bounds each pool request — the storm's
	// deadline-pressure component. Keep it generous: it exercises the
	// cancellation path without making slow CI hosts flaky.
	Deadline time.Duration
	// Now, when non-nil, is a monotonic nanosecond clock used for
	// request latency measurement. It is injected from cmd/ (internal
	// packages never read the wall clock), and nil disables latency
	// reporting — latency is the one non-deterministic block of the
	// result.
	Now func() int64
}

// DefaultResilienceConfig returns the published chaos-study shape.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		Replicas:        3,
		Waves:           12,
		RequestsPerWave: 8,
		Timesteps:       40,
		ChaosSeed:       Seed,
		NTrain:          400,
		NTest:           120,
	}
}

// SmokeResilienceConfig returns the chaos-smoke shape: tiny load, short
// windows — enough to exercise routing, scrub, retirement, recompile
// and bitwise-retry under -race in seconds.
func SmokeResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		Replicas:        2,
		Waves:           3,
		RequestsPerWave: 3,
		Timesteps:       10,
		ChaosSeed:       Seed,
		NTrain:          150,
		NTest:           60,
	}
}

// PoolOutcome is the pooled service's side of the study.
type PoolOutcome struct {
	// Served / Failed partition the requests; Availability their ratio.
	Served       int     `json:"served"`
	Failed       int     `json:"failed"`
	Availability float64 `json:"availability"`
	// Correct counts label hits among served requests; Accuracy the
	// ratio over everything offered (failures score as misses).
	Correct  int     `json:"correct"`
	Accuracy float64 `json:"accuracy"`
	// BitwiseMatches / Mismatched compare served outputs against the
	// undisturbed baseline; the determinism contract demands
	// Mismatched == 0.
	BitwiseMatches int `json:"bitwise_matches"`
	Mismatched     int `json:"mismatched"`
	// Fleet is the pool's lifecycle counter snapshot.
	Fleet obs.FleetStats `json:"fleet"`
	// LatencyMeanNS / LatencyMaxNS are wall-clock per-request figures,
	// present only when a clock was injected; they are the one
	// environment-dependent block of the record.
	LatencyMeanNS int64 `json:"latency_mean_ns,omitempty"`
	LatencyMaxNS  int64 `json:"latency_max_ns,omitempty"`
}

// VictimOutcome is the unpooled single session's side of the study. The
// victim faces only the storm's physical events (drift bursts and stuck
// onsets — every one of them, since one chip absorbs the whole
// environment) and scrubs between waves; replica kills and run faults
// model infrastructure the single-session deployment does not have, so
// skipping them only flatters the victim.
type VictimOutcome struct {
	Served       int     `json:"served"`
	Failed       int     `json:"failed"`
	Availability float64 `json:"availability"`
	Correct      int     `json:"correct"`
	Accuracy     float64 `json:"accuracy"`
	// Mismatched counts served outputs that drifted from the baseline
	// bits — silent degradation before the terminal error.
	Mismatched int `json:"mismatched"`
	// TerminalWave is the wave whose scrub went terminal (-1 when the
	// victim survived); TerminalError the degradation message.
	TerminalWave  int    `json:"terminal_wave"`
	TerminalError string `json:"terminal_error,omitempty"`
}

// ResilienceResult is the chaos study record.
type ResilienceResult struct {
	Model           string        `json:"model"`
	Replicas        int           `json:"replicas"`
	Waves           int           `json:"waves"`
	RequestsPerWave int           `json:"requests_per_wave"`
	Timesteps       int           `json:"timesteps"`
	ChaosSeed       uint64        `json:"chaos_seed"`
	Events          []fleet.Event `json:"events"`
	// BaselineAccuracy is the undisturbed single-session accuracy over
	// the same request sequence — the bar both services are held to.
	BaselineAccuracy float64       `json:"baseline_accuracy"`
	Pool             PoolOutcome   `json:"pool"`
	Victim           VictimOutcome `json:"victim"`
}

// resilienceChipSeed seeds every chip of the study — baseline, pool
// replicas and victim — so all of them program identical arrays.
const resilienceChipSeed = Seed + 11

// resilienceRel builds a fresh per-chip reliability config: full
// protection, no compile-time fault injection (the storm is the only
// fault source), default degradation policy.
func resilienceRel() *reliability.Config {
	return &reliability.Config{
		Protection: reliability.ProtectSpareRemap,
		Policy:     reliability.DefaultPolicy(),
	}
}

// ResilienceStudy runs the chaos study. Everything except the optional
// latency block is deterministic for a fixed config.
func ResilienceStudy(ctx context.Context, cfg ResilienceConfig) (ResilienceResult, error) {
	if cfg.StuckFraction <= 0 {
		cfg.StuckFraction = 0.06
	}
	if cfg.DriftSteps <= 0 {
		cfg.DriftSteps = 20000
	}
	tm := trainScaled(benchmarkSpec{"mlp3/mnist-like", models.NewMLP3, dataset.MNISTLike, 8, 0}, cfg.NTrain, cfg.NTest)
	conv, err := convert.Convert(tm.net, tm.trainDS, convert.DefaultConfig())
	if err != nil {
		return ResilienceResult{}, fmt.Errorf("resilience: %w", err)
	}

	compile := func(ctx context.Context) (*arch.Session, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chip := arch.NewChip(device.DefaultParams(), crossbar.Config{}, rng.New(resilienceChipSeed))
		chip.Rel = resilienceRel()
		return chip.Compile(conv,
			arch.WithMode(arch.ModeSNN),
			arch.WithTimesteps(cfg.Timesteps),
			arch.WithSeed(Seed))
	}

	// The request sequence: the test set replayed in order, long enough
	// for the whole study.
	total := cfg.Waves * cfg.RequestsPerWave
	inputs := make([]*tensor.Tensor, total)
	labels := make([]int, total)
	for i := 0; i < total; i++ {
		inputs[i], labels[i] = tm.testDS.Sample(i % cfg.NTest)
	}

	res := ResilienceResult{
		Model:           tm.name,
		Replicas:        cfg.Replicas,
		Waves:           cfg.Waves,
		RequestsPerWave: cfg.RequestsPerWave,
		Timesteps:       cfg.Timesteps,
		ChaosSeed:       cfg.ChaosSeed,
		Events: fleet.Storm(cfg.ChaosSeed, fleet.StormConfig{
			Waves:         cfg.Waves,
			Replicas:      cfg.Replicas,
			DriftSteps:    cfg.DriftSteps,
			StuckFraction: cfg.StuckFraction,
		}),
	}

	// Golden baseline: one undisturbed session over the whole sequence.
	golden := make([]*arch.RunResult, total)
	base, err := compile(ctx)
	if err != nil {
		return ResilienceResult{}, fmt.Errorf("resilience: baseline: %w", err)
	}
	baseCorrect := 0
	for i, in := range inputs {
		run, err := base.Run(ctx, in)
		if err != nil {
			return ResilienceResult{}, fmt.Errorf("resilience: baseline request %d: %w", i, err)
		}
		golden[i] = run
		if run.Prediction == labels[i] {
			baseCorrect++
		}
	}
	res.BaselineAccuracy = float64(baseCorrect) / float64(total)

	// The pooled service under the storm.
	rec := &obs.FleetRecorder{}
	pool, err := fleet.NewPool(ctx, fleet.Config{
		Replicas: cfg.Replicas,
		Factory:  compile,
		Seed:     Seed,
		Rec:      rec,
	})
	if err != nil {
		return ResilienceResult{}, fmt.Errorf("resilience: pool: %w", err)
	}
	var latSum, latMax int64
	for w := 0; w < cfg.Waves; w++ {
		pool.Apply(res.Events[w])
		if err := pool.Maintain(ctx); err != nil {
			return ResilienceResult{}, fmt.Errorf("resilience: maintain wave %d: %w", w, err)
		}
		for r := 0; r < cfg.RequestsPerWave; r++ {
			i := w*cfg.RequestsPerWave + r
			rctx, cancel := ctx, context.CancelFunc(nil)
			if cfg.Deadline > 0 {
				rctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
			}
			var t0 int64
			if cfg.Now != nil {
				t0 = cfg.Now()
			}
			run, err := pool.Run(rctx, inputs[i])
			if cfg.Now != nil {
				d := cfg.Now() - t0
				latSum += d
				if d > latMax {
					latMax = d
				}
			}
			if cancel != nil {
				cancel()
			}
			if err != nil {
				if ctx.Err() != nil {
					return ResilienceResult{}, ctx.Err()
				}
				res.Pool.Failed++
				continue
			}
			res.Pool.Served++
			if run.Prediction == labels[i] {
				res.Pool.Correct++
			}
			if sameBits(run.Output, golden[i].Output) {
				res.Pool.BitwiseMatches++
			} else {
				res.Pool.Mismatched++
			}
		}
	}
	res.Pool.Availability = float64(res.Pool.Served) / float64(total)
	res.Pool.Accuracy = float64(res.Pool.Correct) / float64(total)
	res.Pool.Fleet = rec.Stats()
	if cfg.Now != nil && total > 0 {
		res.Pool.LatencyMeanNS = latSum / int64(total)
		res.Pool.LatencyMaxNS = latMax
	}

	// The unpooled victim under the same physical storm.
	victim, err := compile(ctx)
	if err != nil {
		return ResilienceResult{}, fmt.Errorf("resilience: victim: %w", err)
	}
	res.Victim.TerminalWave = -1
	for w := 0; w < cfg.Waves; w++ {
		if victim != nil {
			switch e := res.Events[w]; e.Kind {
			case fleet.EventDriftBurst:
				victim.AgeRetention(e.Steps)
			case fleet.EventStuckOnset:
				victim.InjectStuckFaults(e.Seed, e.Fraction, crossbar.StuckAP)
			}
			if !victim.Pristine() {
				if _, err := victim.Scrub(ctx); err != nil {
					var de *reliability.DegradedError
					if !errors.As(err, &de) {
						return ResilienceResult{}, fmt.Errorf("resilience: victim scrub wave %d: %w", w, err)
					}
					res.Victim.TerminalWave = w
					res.Victim.TerminalError = de.Error()
					victim = nil
				}
			}
		}
		for r := 0; r < cfg.RequestsPerWave; r++ {
			i := w*cfg.RequestsPerWave + r
			if victim == nil {
				res.Victim.Failed++
				continue
			}
			run, err := victim.Run(ctx, inputs[i])
			if err != nil {
				if ctx.Err() != nil {
					return ResilienceResult{}, ctx.Err()
				}
				res.Victim.Failed++
				continue
			}
			res.Victim.Served++
			if run.Prediction == labels[i] {
				res.Victim.Correct++
			}
			if !sameBits(run.Output, golden[i].Output) {
				res.Victim.Mismatched++
			}
		}
	}
	res.Victim.Availability = float64(res.Victim.Served) / float64(total)
	res.Victim.Accuracy = float64(res.Victim.Correct) / float64(total)
	return res, nil
}

// sameBits reports whether two output tensors are bitwise identical —
// Float64bits equality per element, immune to the float ==/!= pitfalls
// around NaN and signed zero.
func sameBits(a, b *tensor.Tensor) bool {
	if a == nil || b == nil {
		return a == b
	}
	ad, bd := a.Data(), b.Data()
	if len(ad) != len(bd) {
		return false
	}
	for i := range ad {
		if math.Float64bits(ad[i]) != math.Float64bits(bd[i]) {
			return false
		}
	}
	return true
}

// Render writes the chaos study summary.
func (r ResilienceResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Resilience chaos study (%s, %d replicas, %d waves × %d requests, storm seed %d)\n",
		r.Model, r.Replicas, r.Waves, r.RequestsPerWave, r.ChaosSeed)
	kinds := map[fleet.EventKind]int{}
	for _, e := range r.Events {
		kinds[e.Kind]++
	}
	fmt.Fprintf(w, "  storm: %d drift bursts, %d stuck onsets, %d kills, %d run faults, %d quiet\n",
		kinds[fleet.EventDriftBurst], kinds[fleet.EventStuckOnset],
		kinds[fleet.EventKill], kinds[fleet.EventRunFault], kinds[fleet.EventNone])
	fmt.Fprintf(w, "  baseline accuracy (undisturbed): %.4f\n", r.BaselineAccuracy)
	fmt.Fprintf(w, "  pooled:   availability %.4f  accuracy %.4f  bitwise %d/%d  retries %d  failovers %d  retirements %d  recompiles %d  scrubs %d\n",
		r.Pool.Availability, r.Pool.Accuracy, r.Pool.BitwiseMatches, r.Pool.Served,
		r.Pool.Fleet.Retries, r.Pool.Fleet.Failovers, r.Pool.Fleet.Retirements,
		r.Pool.Fleet.Recompiles, r.Pool.Fleet.ScrubCycles)
	term := "survived"
	if r.Victim.TerminalWave >= 0 {
		term = fmt.Sprintf("terminal DegradedError at wave %d", r.Victim.TerminalWave)
	}
	fmt.Fprintf(w, "  unpooled: availability %.4f  accuracy %.4f  silent mismatches %d  %s\n",
		r.Victim.Availability, r.Victim.Accuracy, r.Victim.Mismatched, term)
	if r.Pool.LatencyMeanNS > 0 {
		fmt.Fprintf(w, "  pool latency: mean %.2f ms  max %.2f ms\n",
			float64(r.Pool.LatencyMeanNS)/1e6, float64(r.Pool.LatencyMaxNS)/1e6)
	}
}
