package experiments

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/rng"
	"repro/internal/snn"
)

// FaultPoint is one fault-rate operating point.
type FaultPoint struct {
	FaultRate float64
	Accuracy  float64
}

// FaultResilienceResult is the stuck-at fault study: hardware SNN accuracy
// as device fault rates grow — the abstract's "as efficient and
// fault-tolerant as the brain" claim, exercised on simulated crossbars.
type FaultResilienceResult struct {
	Model  string
	Points []FaultPoint
}

// FaultResilience trains the scaled MLP, lowers it onto the chip and
// sweeps stuck-at-AP fault rates.
func FaultResilience(samples, timesteps int) (FaultResilienceResult, error) {
	tm := trainScaled(benchmarkSpec{"mlp3/mnist-like", models.NewMLP3, dataset.MNISTLike, 8, 0}, 400, 120)
	conv, err := convert.Convert(tm.net, tm.trainDS, convert.DefaultConfig())
	if err != nil {
		return FaultResilienceResult{}, fmt.Errorf("faults: %w", err)
	}
	res := FaultResilienceResult{Model: tm.name}
	for _, rate := range []float64{0, 0.005, 0.01, 0.05, 0.10, 0.20} {
		chip := arch.NewChip(device.DefaultParams(), crossbar.Config{}, rng.New(Seed))
		chip.FaultRate = rate
		correct := 0
		r := rng.New(Seed + 7)
		for i := 0; i < samples; i++ {
			img, label := tm.testDS.Sample(i)
			run, err := chip.RunSNN(conv, img, timesteps, snn.NewPoissonEncoder(1.0, r.Split()))
			if err != nil {
				return FaultResilienceResult{}, fmt.Errorf("faults: rate %g sample %d: %w", rate, i, err)
			}
			if run.Prediction == label {
				correct++
			}
		}
		res.Points = append(res.Points, FaultPoint{
			FaultRate: rate,
			Accuracy:  float64(correct) / float64(samples),
		})
	}
	return res, nil
}

// Render writes the fault curve.
func (r FaultResilienceResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Stuck-at fault resilience on simulated crossbars (%s)\n", r.Model)
	fmt.Fprintln(w, "  fault rate  accuracy")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %9.3f   %.4f %s\n", p.FaultRate, p.Accuracy, bar(p.Accuracy, 1, 30))
	}
}
