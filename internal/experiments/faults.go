package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/snn"
)

// FaultPoint is one fault-rate operating point of one protection curve.
type FaultPoint struct {
	FaultRate float64
	Accuracy  float64
	// Refused counts samples the chip declined to compute (DegradedError);
	// refused samples score as mispredictions.
	Refused int
	// Health is the chip's cumulative reliability report at this point.
	Health reliability.Report
}

// FaultCurve is the accuracy-vs-rate sweep under one protection level.
type FaultCurve struct {
	Protection reliability.Protection
	Points     []FaultPoint
}

// FaultResilienceResult is the three-curve fault study: hardware SNN
// accuracy as device fault rates grow, unprotected vs write-verify vs
// sparing+remap — the abstract's "as efficient and fault-tolerant as the
// brain" claim, exercised on simulated crossbars with the reliability
// subsystem on and off.
type FaultResilienceResult struct {
	Model  string
	Rates  []float64
	Curves []FaultCurve
}

// DefaultFaultRates returns the device fault rates the published study
// sweeps.
func DefaultFaultRates() []float64 {
	return []float64{0, 0.005, 0.01, 0.05, 0.10, 0.20}
}

// faultSeed derives the per-rate chip seed. Deriving from the rate value
// (not its index) keeps every operating point's fault pattern stable when
// rates are added or removed, and keeps it identical across the three
// protection curves so they fight the same defects.
func faultSeed(rate float64) uint64 {
	return Seed ^ math.Float64bits(rate)
}

// FaultResilience trains the scaled MLP once, lowers it onto the chip
// and sweeps the standard fault rates under all three protection levels.
func FaultResilience(samples, timesteps int) (FaultResilienceResult, error) {
	return FaultResilienceSweep(DefaultFaultRates(), samples, timesteps, 400, 120)
}

// FaultResilienceSmoke is the tier-1 smoke configuration: two rates,
// few samples, short windows — enough to exercise injection, BIST,
// write-verify, remapping and the degradation path in seconds.
func FaultResilienceSmoke() (FaultResilienceResult, error) {
	return FaultResilienceSweep([]float64{0, 0.05}, 4, 10, 150, 60)
}

// FaultResilienceSweep runs the three-curve study over explicit rates.
// One model is trained and converted once; every (rate, protection)
// point re-derives the chip from the rate's deterministic seed, so the
// injected defect population at a given rate is identical across curves.
func FaultResilienceSweep(rates []float64, samples, timesteps, nTrain, nTest int) (FaultResilienceResult, error) {
	tm := trainScaled(benchmarkSpec{"mlp3/mnist-like", models.NewMLP3, dataset.MNISTLike, 8, 0}, nTrain, nTest)
	conv, err := convert.Convert(tm.net, tm.trainDS, convert.DefaultConfig())
	if err != nil {
		return FaultResilienceResult{}, fmt.Errorf("faults: %w", err)
	}
	res := FaultResilienceResult{Model: tm.name, Rates: rates}
	for _, prot := range []reliability.Protection{
		reliability.ProtectNone, reliability.ProtectWriteVerify, reliability.ProtectSpareRemap,
	} {
		curve := FaultCurve{Protection: prot}
		for _, rate := range rates {
			chip := arch.NewChip(device.DefaultParams(), crossbar.Config{}, rng.New(faultSeed(rate)))
			chip.Rel = reliability.StudyConfig(rate, prot)
			correct, refused := 0, 0
			r := rng.New(Seed + 7)
			for i := 0; i < samples; i++ {
				img, label := tm.testDS.Sample(i)
				run, err := chip.RunSNN(conv, img, timesteps, snn.NewPoissonEncoder(1.0, r.Split()))
				if err != nil {
					var de *reliability.DegradedError
					if errors.As(err, &de) {
						refused++
						continue
					}
					return FaultResilienceResult{}, fmt.Errorf("faults: %s rate %g sample %d: %w", prot, rate, i, err)
				}
				if run.Prediction == label {
					correct++
				}
			}
			curve.Points = append(curve.Points, FaultPoint{
				FaultRate: rate,
				Accuracy:  float64(correct) / float64(samples),
				Refused:   refused,
				Health:    chip.Health(),
			})
		}
		res.Curves = append(res.Curves, curve)
	}
	return res, nil
}

// Curve returns the sweep for one protection level, or nil.
func (r FaultResilienceResult) Curve(p reliability.Protection) *FaultCurve {
	for i := range r.Curves {
		if r.Curves[i].Protection == p {
			return &r.Curves[i]
		}
	}
	return nil
}

// Render writes the three fault curves side by side.
func (r FaultResilienceResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fault resilience on simulated crossbars (%s)\n", r.Model)
	fmt.Fprintln(w, "  device faults: 80% weak / 20% stuck-AP; dead lines at rate/20")
	fmt.Fprint(w, "  fault rate")
	for _, c := range r.Curves {
		fmt.Fprintf(w, "  %-14s", c.Protection)
	}
	fmt.Fprintln(w)
	for i := range r.Rates {
		fmt.Fprintf(w, "  %9.3f ", r.Rates[i])
		for _, c := range r.Curves {
			if i >= len(c.Points) {
				continue
			}
			p := c.Points[i]
			mark := " "
			if p.Refused > 0 {
				mark = "!"
			}
			fmt.Fprintf(w, "  %.4f%s       ", p.Accuracy, mark)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  (! = chip refused samples: degradation policy tripped)")
	if c := r.Curve(reliability.ProtectSpareRemap); c != nil && len(c.Points) > 0 {
		last := c.Points[len(c.Points)-1]
		h := last.Health
		fmt.Fprintf(w, "  sparing+remap at rate %.3f: %d repaired, %d compensated, %d rows + %d cols remapped, %d tiles retired, %.3f%% unmitigated\n",
			last.FaultRate, h.Repaired, h.Compensated, h.RowsRemapped, h.ColsRemapped,
			h.TilesRetired, h.UnmitigatedFrac()*100)
	}
}
