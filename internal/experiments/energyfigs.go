package experiments

import (
	"fmt"
	"io"

	"repro/internal/convert"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/inxs"
	"repro/internal/isaac"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/quant"
	"repro/internal/rng"
)

// ---------------------------------------------------------------------------
// Fig. 12: layer-wise ISAAC energy normalized to NEBULA-ANN
// ---------------------------------------------------------------------------

// Fig12Series is one model's layer-wise ratio series.
type Fig12Series struct {
	Model  string
	Layers []string
	Ratio  []float64 // ISAAC / NEBULA-ANN per layer
	Mean   float64
}

// Fig12Result holds the AlexNet and MobileNet series.
type Fig12Result struct {
	Series []Fig12Series
}

// Fig12ISAACLayerwise computes the layer-wise energy of ISAAC normalized
// to NEBULA-ANN for AlexNet and MobileNet-v1 (full-size workloads).
func Fig12ISAACLayerwise() Fig12Result {
	em := energy.NewModel()
	im := isaac.NewModel()
	var out Fig12Result
	for _, w := range []models.Workload{
		models.FullAlexNet(),
		models.FullMobileNetV1(10, 500, 91.00, 81.08),
	} {
		np := mapping.MapWorkload(w)
		ann := em.ANNNetwork(np)
		is := im.Network(w)
		s := Fig12Series{Model: w.Name}
		var isTot, annTot float64
		for i := range is {
			if ann.Layers[i].Total() == 0 {
				continue
			}
			s.Layers = append(s.Layers, is[i].Name)
			s.Ratio = append(s.Ratio, is[i].Total()/ann.Layers[i].Total())
			isTot += is[i].Total()
			annTot += ann.Layers[i].Total()
		}
		s.Mean = isTot / annTot
		out.Series = append(out.Series, s)
	}
	return out
}

// Render writes the per-layer ratios.
func (r Fig12Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 12 — layer-wise ISAAC energy normalized to NEBULA-ANN")
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %s (network mean %.2f×)\n", s.Model, s.Mean)
		for i, name := range s.Layers {
			fmt.Fprintf(w, "    %-10s %6.2f× %s\n", name, s.Ratio[i], bar(s.Ratio[i], 16, 32))
		}
	}
}

// ---------------------------------------------------------------------------
// Fig. 13(a): average ISAAC/NEBULA energy across benchmarks
// ---------------------------------------------------------------------------

// Fig13aRow is one benchmark's aggregate ratio.
type Fig13aRow struct {
	Model string
	Ratio float64
}

// Fig13aResult is the cross-benchmark summary.
type Fig13aResult struct {
	Rows []Fig13aRow
}

// Fig13aISAACAverage computes the network-level ISAAC/NEBULA-ANN energy
// ratio for every paper workload.
func Fig13aISAACAverage() Fig13aResult {
	em := energy.NewModel()
	im := isaac.NewModel()
	var out Fig13aResult
	for _, w := range models.PaperWorkloads() {
		np := mapping.MapWorkload(w)
		ann := em.ANNNetwork(np)
		out.Rows = append(out.Rows, Fig13aRow{w.Name, im.NetworkTotal(w) / ann.EnergyJ})
	}
	return out
}

// Render writes the summary rows.
func (r Fig13aResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 13(a) — ISAAC energy normalized to NEBULA-ANN")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-22s %6.2f× %s\n", row.Model, row.Ratio, bar(row.Ratio, 10, 30))
	}
}

// ---------------------------------------------------------------------------
// Fig. 13(b): layer-wise INXS energy normalized to NEBULA-SNN (VGG)
// ---------------------------------------------------------------------------

// Fig13bResult is the INXS comparison on VGG.
type Fig13bResult struct {
	Layers []string
	Ratio  []float64
	Mean   float64
}

// Fig13bINXSLayerwise computes the layer-wise INXS/NEBULA-SNN ratio for
// the full-size VGG SNN.
func Fig13bINXSLayerwise() Fig13bResult {
	em := energy.NewModel()
	xm := inxs.NewModel()
	w := models.FullVGG13(10, 300, 91.60, 90.05)
	np := mapping.MapWorkload(w)
	act := energy.DefaultActivity(w, energy.DefaultInputRate)
	snn := em.SNNNetwork(np, w.Timesteps, act)
	ix := xm.Network(w, w.Timesteps, act)
	var out Fig13bResult
	var ixTot, snnTot float64
	for i := range ix {
		if snn.Layers[i].Total() == 0 {
			continue
		}
		out.Layers = append(out.Layers, ix[i].Name)
		out.Ratio = append(out.Ratio, ix[i].Total()/snn.Layers[i].Total())
		ixTot += ix[i].Total()
		snnTot += snn.Layers[i].Total()
	}
	out.Mean = ixTot / snnTot
	return out
}

// Render writes the per-layer ratios.
func (r Fig13bResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 13(b) — INXS energy normalized to NEBULA-SNN, VGG (network mean %.1f×)\n", r.Mean)
	for i, name := range r.Layers {
		fmt.Fprintf(w, "  %-10s %7.2f× %s\n", name, r.Ratio[i], bar(r.Ratio[i], 100, 32))
	}
}

// ---------------------------------------------------------------------------
// Fig. 14: layer-wise ANN/SNN peak power
// ---------------------------------------------------------------------------

// Fig14Series is one model's layer-wise peak-power ratio.
type Fig14Series struct {
	Model  string
	Layers []string
	Ratio  []float64 // ANN peak / SNN peak
	Max    float64
}

// Fig14Result covers the six Fig. 14 models.
type Fig14Result struct {
	Series []Fig14Series
}

// Fig14PeakPower computes the layer-wise ANN/SNN peak power ratio for the
// paper workloads.
func Fig14PeakPower() Fig14Result {
	em := energy.NewModel()
	var out Fig14Result
	for _, w := range []models.Workload{
		models.FullMLP3(), models.FullLeNet5(),
		models.FullVGG13(10, 300, 91.60, 90.05),
		models.FullMobileNetV1(10, 500, 91.00, 81.08),
		models.FullSVHNNet(), models.FullAlexNet(),
	} {
		np := mapping.MapWorkload(w)
		act := energy.DefaultActivity(w, energy.DefaultInputRate)
		ann := em.ANNNetwork(np)
		snn := em.SNNNetwork(np, w.Timesteps, act)
		s := Fig14Series{Model: w.Name}
		for i := range snn.Layers {
			if snn.Layers[i].PeakPowerW == 0 {
				continue
			}
			ratio := ann.Layers[i].PeakPowerW / snn.Layers[i].PeakPowerW
			s.Layers = append(s.Layers, snn.Layers[i].Name)
			s.Ratio = append(s.Ratio, ratio)
			if ratio > s.Max {
				s.Max = ratio
			}
		}
		out.Series = append(out.Series, s)
	}
	return out
}

// Render writes the peak-power ratios.
func (r Fig14Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 14 — layer-wise ANN peak power relative to SNN")
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %s (max %.1f×)\n", s.Model, s.Max)
		for i, name := range s.Layers {
			fmt.Fprintf(w, "    %-10s %6.1f× %s\n", name, s.Ratio[i], bar(s.Ratio[i], 50, 25))
		}
	}
}

// ---------------------------------------------------------------------------
// Figs. 15 & 16: component-wise energy breakdowns
// ---------------------------------------------------------------------------

// BreakdownRow is one model+mode breakdown as fractions of total energy.
type BreakdownRow struct {
	Model    string
	Mode     string
	Crossbar float64
	Driver   float64
	NU       float64
	ADC      float64
	SRAM     float64
	EDRAM    float64
	NoC      float64
}

// Fig15Result is the VGG breakdown in both modes, per layer.
type Fig15Result struct {
	PerLayerSNN []BreakdownRow
	PerLayerANN []BreakdownRow
	TotalSNN    BreakdownRow
	TotalANN    BreakdownRow
}

func toRow(model, mode string, b energy.Breakdown) BreakdownRow {
	t := b.Total()
	if t == 0 {
		return BreakdownRow{Model: model, Mode: mode}
	}
	return BreakdownRow{
		Model: model, Mode: mode,
		Crossbar: b.CrossbarJ / t, Driver: b.DriverJ / t, NU: b.NUJ / t,
		ADC: b.ADCJ / t, SRAM: b.SRAMJ / t, EDRAM: b.EDRAMJ / t, NoC: b.NoCJ / t,
	}
}

// Fig15ComponentBreakdownVGG computes per-layer and total component
// splits for VGG in both modes.
func Fig15ComponentBreakdownVGG() Fig15Result {
	em := energy.NewModel()
	w := models.FullVGG13(10, 300, 91.60, 90.05)
	np := mapping.MapWorkload(w)
	act := energy.DefaultActivity(w, energy.DefaultInputRate)
	snn := em.SNNNetwork(np, w.Timesteps, act)
	ann := em.ANNNetwork(np)
	var out Fig15Result
	for _, l := range snn.Layers {
		out.PerLayerSNN = append(out.PerLayerSNN, toRow(l.Name, "SNN", l.Breakdown))
	}
	for _, l := range ann.Layers {
		out.PerLayerANN = append(out.PerLayerANN, toRow(l.Name, "ANN", l.Breakdown))
	}
	out.TotalSNN = toRow(w.Name, "SNN", snn.Breakdown)
	out.TotalANN = toRow(w.Name, "ANN", ann.Breakdown)
	return out
}

// Render writes the VGG breakdowns.
func (r Fig15Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 15 — component-wise energy breakdown, VGG")
	fmt.Fprintln(w, "  mode  layer       xbar   drv    NU     ADC    SRAM   eDRAM  NoC")
	for _, row := range r.PerLayerSNN {
		fmt.Fprintf(w, "  SNN   %-10s %.3f  %.3f  %.3f  %.3f  %.3f  %.3f  %.3f\n",
			row.Model, row.Crossbar, row.Driver, row.NU, row.ADC, row.SRAM, row.EDRAM, row.NoC)
	}
	for _, row := range r.PerLayerANN {
		fmt.Fprintf(w, "  ANN   %-10s %.3f  %.3f  %.3f  %.3f  %.3f  %.3f  %.3f\n",
			row.Model, row.Crossbar, row.Driver, row.NU, row.ADC, row.SRAM, row.EDRAM, row.NoC)
	}
	fmt.Fprintf(w, "  totals: SNN xbar %.2f sram %.2f edram %.2f | ANN xbar %.2f dac %.2f\n",
		r.TotalSNN.Crossbar, r.TotalSNN.SRAM, r.TotalSNN.EDRAM, r.TotalANN.Crossbar, r.TotalANN.Driver)
}

// Fig16Result is the breakdown across all eight benchmarks.
type Fig16Result struct {
	SNN []BreakdownRow
	ANN []BreakdownRow
}

// Fig16ComponentBreakdownAll computes network-level component splits for
// every paper workload in both modes.
func Fig16ComponentBreakdownAll() Fig16Result {
	em := energy.NewModel()
	var out Fig16Result
	for _, w := range models.PaperWorkloads() {
		np := mapping.MapWorkload(w)
		act := energy.DefaultActivity(w, energy.DefaultInputRate)
		snn := em.SNNNetwork(np, w.Timesteps, act)
		ann := em.ANNNetwork(np)
		out.SNN = append(out.SNN, toRow(w.Name, "SNN", snn.Breakdown))
		out.ANN = append(out.ANN, toRow(w.Name, "ANN", ann.Breakdown))
	}
	return out
}

// Render writes the cross-benchmark breakdowns.
func (r Fig16Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 16 — component-wise energy breakdown across benchmarks")
	fmt.Fprintln(w, "  mode  model                xbar   drv    NU     ADC    SRAM   eDRAM  NoC")
	for _, row := range r.SNN {
		fmt.Fprintf(w, "  SNN   %-20s %.3f  %.3f  %.3f  %.3f  %.3f  %.3f  %.3f\n",
			row.Model, row.Crossbar, row.Driver, row.NU, row.ADC, row.SRAM, row.EDRAM, row.NoC)
	}
	for _, row := range r.ANN {
		fmt.Fprintf(w, "  ANN   %-20s %.3f  %.3f  %.3f  %.3f  %.3f  %.3f  %.3f\n",
			row.Model, row.Crossbar, row.Driver, row.NU, row.ADC, row.SRAM, row.EDRAM, row.NoC)
	}
}

// ---------------------------------------------------------------------------
// Fig. 17: SNN vs hybrid vs ANN energy/power study
// ---------------------------------------------------------------------------

// Fig17Point is one bar of Fig. 17.
type Fig17Point struct {
	Mode        string // "SNN", "Hyb-k", "ANN"
	NonSpiking  int
	Timesteps   int
	EnergyVsSNN float64 // energy normalized to the pure SNN bar
	PowerVsANN  float64 // avg power normalized to the pure ANN bar
}

// Fig17Series is one workload's sweep.
type Fig17Series struct {
	Model  string
	Points []Fig17Point
}

// Fig17Result covers the three Fig. 17 workloads.
type Fig17Result struct {
	Series []Fig17Series
}

// Fig17HybridStudy reproduces the energy/power sweep: pure SNN at its
// Table I window, hybrids with more non-spiking layers at shrinking
// windows, and the pure ANN.
func Fig17HybridStudy() Fig17Result {
	em := energy.NewModel()
	var out Fig17Result
	for _, w := range []models.Workload{
		models.FullAlexNet(),
		models.FullVGG13(10, 300, 91.60, 90.05),
		models.FullSVHNNet(),
	} {
		np := mapping.MapWorkload(w)
		act := energy.DefaultActivity(w, energy.DefaultInputRate)
		base := w.Timesteps
		snn := em.SNNNetwork(np, base, act)
		ann := em.ANNNetwork(np)
		s := Fig17Series{Model: w.Name}
		s.Points = append(s.Points, Fig17Point{
			Mode: "SNN", Timesteps: base,
			EnergyVsSNN: 1, PowerVsANN: snn.AvgPowerW / ann.AvgPowerW,
		})
		type cfg struct{ k, T int }
		for _, c := range []cfg{{1, base * 5 / 6}, {2, base * 2 / 3}, {3, base / 2}, {4, base / 3}} {
			h := em.HybridNetwork(np, c.T, c.k, act)
			s.Points = append(s.Points, Fig17Point{
				Mode: fmt.Sprintf("Hyb-%d", c.k), NonSpiking: c.k, Timesteps: c.T,
				EnergyVsSNN: h.EnergyJ / snn.EnergyJ,
				PowerVsANN:  h.AvgPowerW / ann.AvgPowerW,
			})
		}
		s.Points = append(s.Points, Fig17Point{
			Mode: "ANN", EnergyVsSNN: ann.EnergyJ / snn.EnergyJ, PowerVsANN: 1,
		})
		out.Series = append(out.Series, s)
	}
	return out
}

// Render writes the sweep.
func (r Fig17Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 17 — SNN vs hybrid vs ANN (energy vs SNN; power vs ANN)")
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %s\n", s.Model)
		fmt.Fprintln(w, "    mode    t-steps  E/E_SNN   P/P_ANN")
		for _, p := range s.Points {
			fmt.Fprintf(w, "    %-6s  %6d   %7.3f   %7.3f\n", p.Mode, p.Timesteps, p.EnergyVsSNN, p.PowerVsANN)
		}
	}
}

// ---------------------------------------------------------------------------
// §IV-D: Monte-Carlo noise resilience
// ---------------------------------------------------------------------------

// NoiseResult is the weight-variation study.
type NoiseResult struct {
	Model    string
	CleanANN float64
	NoisyANN float64
	CleanSNN float64
	NoisySNN float64
	Sigma    float64
	Trials   int
}

// NoiseResilience reproduces the §IV-D Monte-Carlo study on the scaled
// VGG: 16-level quantized ANN and SNN accuracy with 10% weight noise.
func NoiseResilience(samples, trials int) (NoiseResult, error) {
	spec := benchmarkSpec{"vgg13/cifar10-like", models.NewVGG13, dataset.CIFAR10Like, 6, 120}
	tm := trainScaled(spec, 400, 150)
	ranges := quant.Calibrate(tm.net, tm.trainDS, quant.DefaultCalibration())
	cfg := quant.DefaultConfig()

	qnet := cloneTrained(spec, tm)
	quant.Apply(qnet, ranges, cfg)
	cleanANN := quant.EvaluateQuantized(qnet, tm.testDS, ranges, cfg, 32)
	noisyANN := quant.MonteCarloAccuracy(qnet, tm.testDS, ranges, cfg, 0.10, trials, Seed)

	conv, err := convert.Convert(qnet, tm.trainDS, convert.DefaultConfig())
	if err != nil {
		return NoiseResult{}, fmt.Errorf("noise: %w", err)
	}
	cleanSNN := conv.Evaluate(tm.testDS, tm.snnTimesteps, samples, Seed).Accuracy
	// Noisy SNN: perturb the converted network's ANN source and reconvert.
	noisySum := 0.0
	r := rng.New(Seed + 1)
	for i := 0; i < trials; i++ {
		pnet := cloneTrained(spec, tm)
		quant.Apply(pnet, ranges, cfg)
		restore := quant.PerturbWeights(pnet, 0.10, r.Split())
		pconv, err := convert.Convert(pnet, tm.trainDS, convert.DefaultConfig())
		if err != nil {
			return NoiseResult{}, fmt.Errorf("noise: trial %d: %w", i, err)
		}
		noisySum += pconv.Evaluate(tm.testDS, tm.snnTimesteps, samples, Seed).Accuracy
		restore()
	}
	return NoiseResult{
		Model: tm.name, Sigma: 0.10, Trials: trials,
		CleanANN: cleanANN, NoisyANN: noisyANN,
		CleanSNN: cleanSNN, NoisySNN: noisySum / float64(trials),
	}, nil
}

// Render writes the noise study.
func (r NoiseResult) Render(w io.Writer) {
	fmt.Fprintf(w, "§IV-D — Monte-Carlo %.0f%% weight variation (%d trials, %s)\n", r.Sigma*100, r.Trials, r.Model)
	fmt.Fprintf(w, "  quantized ANN: clean %.4f → noisy %.4f (Δ %.4f)\n", r.CleanANN, r.NoisyANN, r.CleanANN-r.NoisyANN)
	fmt.Fprintf(w, "  converted SNN: clean %.4f → noisy %.4f (Δ %.4f)\n", r.CleanSNN, r.NoisySNN, r.CleanSNN-r.NoisySNN)
}
