package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAnalyticRenders drives every analytic (no-training) experiment
// end to end — construct and Render — pinning that each one emits its
// figure header. The trained-model studies are exercised at smoke
// scale elsewhere; here their Render methods get literal results so the
// terminal-output path stays covered without minutes of training.
func TestAnalyticRenders(t *testing.T) {
	cases := []struct {
		name   string
		render func(b *bytes.Buffer)
		want   string
	}{
		{"fig12", func(b *bytes.Buffer) { Fig12ISAACLayerwise().Render(b) }, "Fig. 12"},
		{"fig13a", func(b *bytes.Buffer) { Fig13aISAACAverage().Render(b) }, "Fig. 13(a)"},
		{"fig13b", func(b *bytes.Buffer) { Fig13bINXSLayerwise().Render(b) }, "Fig. 13(b)"},
		{"fig14", func(b *bytes.Buffer) { Fig14PeakPower().Render(b) }, "Fig. 14"},
		{"fig15", func(b *bytes.Buffer) { Fig15ComponentBreakdownVGG().Render(b) }, "Fig. 15"},
		{"fig16", func(b *bytes.Buffer) { Fig16ComponentBreakdownAll().Render(b) }, "Fig. 16"},
		{"fig17", func(b *bytes.Buffer) { Fig17HybridStudy().Render(b) }, "Fig. 17"},
		{"table3", func(b *bytes.Buffer) { TableIIIComponents().Render(b) }, "Table III"},
	}
	for _, tc := range cases {
		var b bytes.Buffer
		tc.render(&b)
		if !strings.Contains(b.String(), tc.want) {
			t.Fatalf("%s render missing %q:\n%s", tc.name, tc.want, b.String())
		}
		if !strings.Contains(b.String(), "\n") || b.Len() < 40 {
			t.Fatalf("%s render suspiciously empty:\n%s", tc.name, b.String())
		}
	}
}

// TestTrainedStudyRenders covers the Render methods of the
// trained-model studies with literal results.
func TestTrainedStudyRenders(t *testing.T) {
	var b bytes.Buffer

	Fig4Result{Model: "m", Activity: []float64{0.1, 0.4}}.Render(&b)
	if !strings.Contains(b.String(), "Fig. 4") {
		t.Fatalf("fig4 render:\n%s", b.String())
	}

	b.Reset()
	Fig9Result{Points: []Fig9Point{{"m", 0, 0.9}, {"m", 16, 0.85}}}.Render(&b)
	if !strings.Contains(b.String(), "Fig. 9") || !strings.Contains(b.String(), "float") {
		t.Fatalf("fig9 render:\n%s", b.String())
	}

	b.Reset()
	Fig10Result{Model: "m", ShortT: 60, LongT: 300,
		CorrShortT: []float64{0.5}, CorrLongT: []float64{0.9}}.Render(&b)
	if !strings.Contains(b.String(), "Fig. 10") {
		t.Fatalf("fig10 render:\n%s", b.String())
	}

	b.Reset()
	TableIIResult{Rows: []TableIIRow{{"m", "SNN", 120, 0.8}, {"m", "Hyb-2", 60, 0.82}}}.Render(&b)
	if !strings.Contains(b.String(), "Table II") {
		t.Fatalf("table2 render:\n%s", b.String())
	}

	b.Reset()
	NoiseResult{Model: "m", Sigma: 0.1, Trials: 3,
		CleanANN: 0.9, NoisyANN: 0.85, CleanSNN: 0.88, NoisySNN: 0.86}.Render(&b)
	if !strings.Contains(b.String(), "Monte-Carlo") {
		t.Fatalf("noise render:\n%s", b.String())
	}

	// bar clamps to [0, width] and tolerates a degenerate max.
	if bar(2, 0, 10) != "" {
		t.Fatal("bar with max=0 should be empty")
	}
	if got := bar(-1, 1, 10); strings.Contains(got, "#") && len(got) > 2 {
		t.Fatalf("bar clamped low: %q", got)
	}
	if got := bar(99, 1, 10); len(got) > 12 {
		t.Fatalf("bar clamped high: %q", got)
	}
}
