// Package spikeplane represents spike vectors as bit-packed uint64
// planes so the whole-chip timestep loop can be event-driven: rate
// counts are popcounts, active-row intersection against a kernel's
// live-row mask is a word-AND, and "is this stage silent?" is an
// O(words) scan instead of an O(neurons) walk (DESIGN.md §15).
//
// A plane records *where* spikes are, not their magnitudes; the dense
// []float64 tensor remains the value carrier. For binary (rate-coded)
// planes the bit pattern is the complete signal, which is what enables
// the timestep-repeat cache in the engine. Packing observes the same
// nonzero convention as the dense scan it replaces: any value v != 0
// sets the bit, so negative and graded activations are "active" too.
package spikeplane

import "math/bits"

// WordBits is the number of neuron slots per packed word.
const WordBits = 64

// Words returns the number of uint64 words needed to cover n bits.
func Words(n int) int { return (n + WordBits - 1) / WordBits }

// Plane is a bit-packed spike vector of fixed logical length. The
// zero value is an empty plane; Reset sizes it for reuse without
// allocation in the steady state.
type Plane struct {
	words  []uint64
	n      int
	binary bool
}

// Reset clears the plane and sizes it to n bits. The backing array is
// reused when large enough, so steady-state calls are allocation-free.
//
//nebula:hotpath
func (p *Plane) Reset(n int) {
	w := Words(n)
	if cap(p.words) < w {
		p.words = make([]uint64, w)
	}
	p.words = p.words[:w]
	for i := range p.words {
		p.words[i] = 0
	}
	p.n = n
	p.binary = true
}

// Pack fills the plane from a dense value vector: bit i is set iff
// values[i] != 0. Binary() reports whether every nonzero value was
// exactly 1.0, i.e. the bit pattern losslessly encodes the vector.
//
//nebula:hotpath
func (p *Plane) Pack(values []float64) {
	p.Reset(len(values))
	for i, v := range values {
		if v != 0 {
			p.words[i>>6] |= 1 << uint(i&63)
			//nebula:lint-ignore float-eq binary detection is exact by design: only the literal 1.0 lets the bit pattern stand in for the value
			if v != 1.0 {
				p.binary = false
			}
		}
	}
}

// Set marks bit i active. The caller is responsible for calling
// MarkGraded when the associated value is not exactly 1.0.
//
//nebula:hotpath
func (p *Plane) Set(i int) {
	p.words[i>>6] |= 1 << uint(i&63)
}

// MarkGraded records that the plane carries non-binary magnitudes, so
// the bit pattern alone does not reproduce the dense vector.
func (p *Plane) MarkGraded() { p.binary = false }

// Len returns the logical bit length of the plane.
func (p *Plane) Len() int { return p.n }

// WordSlice exposes the packed words (read-only by convention).
func (p *Plane) WordSlice() []uint64 { return p.words }

// Binary reports whether every active bit corresponds to the value
// exactly 1.0 since the last Reset/Pack.
func (p *Plane) Binary() bool { return p.binary }

// IsZero reports whether no bit is set, in O(words).
//
//nebula:hotpath
func (p *Plane) IsZero() bool {
	for _, w := range p.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of active bits (the spike count).
//
//nebula:hotpath
func (p *Plane) Count() int {
	n := 0
	for _, w := range p.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// EqualWords reports whether two planes have identical length and bit
// pattern.
//
//nebula:hotpath
func (p *Plane) EqualWords(o *Plane) bool {
	if p.n != o.n || len(p.words) != len(o.words) {
		return false
	}
	for i, w := range p.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// CopyFrom makes p a bitwise copy of o, reusing p's backing array.
//
//nebula:hotpath
func (p *Plane) CopyFrom(o *Plane) {
	if cap(p.words) < len(o.words) {
		p.words = make([]uint64, len(o.words))
	}
	p.words = p.words[:len(o.words)]
	copy(p.words, o.words)
	p.n = o.n
	p.binary = o.binary
}

// AsView aliases p over an externally packed word slice of logical
// length n (e.g. a Window view into a larger plane). The words are
// not copied, so the view must not outlive them; trailing all-zero
// words may be omitted from the slice.
//
//nebula:hotpath
func (p *Plane) AsView(words []uint64, n int, binary bool) {
	p.words = words
	p.n = n
	p.binary = binary
}

// AppendIndices appends the active indices in increasing order to dst
// and returns the extended slice (recycled-append idiom: pass
// dst[:0] to reuse capacity).
func (p *Plane) AppendIndices(dst []int) []int {
	for wi, w := range p.words {
		base := wi << 6
		for w != 0 {
			//nebula:lint-ignore hotalloc cold stale-kernel fallback; callers recycle via dst[:0] so growth amortizes to zero
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Iter returns an iterator over the active indices in increasing
// order. The iterator is a value type; no allocation.
//
//nebula:hotpath
func (p *Plane) Iter() Iter {
	return Iter{words: p.words}
}

// Iter yields active bit indices in increasing order via
// TrailingZeros64, preserving the same visit order as a dense
// ascending scan — which is what keeps event-driven accumulation
// bitwise identical to the dense walk.
type Iter struct {
	words []uint64
	cur   uint64
	wi    int
}

// Next returns the next active index, or (-1, false) when exhausted.
//
//nebula:hotpath
func (it *Iter) Next() (int, bool) {
	for it.cur == 0 {
		if it.wi >= len(it.words) {
			return -1, false
		}
		it.cur = it.words[it.wi]
		it.wi++
	}
	tz := bits.TrailingZeros64(it.cur)
	it.cur &= it.cur - 1
	return (it.wi-1)<<6 + tz, true
}

// IterWords iterates a raw word slice (e.g. a Window view) without
// needing a Plane wrapper.
//
//nebula:hotpath
func IterWords(words []uint64) Iter {
	return Iter{words: words}
}

// IsZeroWords reports whether a raw word slice (e.g. a Window view)
// has no bit set.
//
//nebula:hotpath
func IsZeroWords(words []uint64) bool {
	for _, w := range words {
		if w != 0 {
			return false
		}
	}
	return true
}

// CountAnd returns the popcount of a AND b over min(len(a), len(b))
// words — the active-row intersection count against a packed mask.
//
//nebula:hotpath
func CountAnd(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// Window extracts bits [lo, hi) of words as a word-aligned view. When
// lo is word-aligned the result is a subslice of words (no copy, no
// masking of the tail beyond hi — callers must not read past hi).
// Otherwise the bits are shifted into buf, which is grown as needed
// and returned. The engine's row windows are always 64-aligned
// (mapping.M and spill block bounds are multiples of 128), so the
// copy path only runs for hand-built windows.
//
//nebula:hotpath
func Window(words []uint64, lo, hi int, buf []uint64) []uint64 {
	if hi <= lo {
		return buf[:0]
	}
	w := Words(hi - lo)
	if lo&63 == 0 {
		wlo := lo >> 6
		end := wlo + w
		if end > len(words) {
			end = len(words)
		}
		return words[wlo:end]
	}
	if cap(buf) < w {
		buf = make([]uint64, w)
	}
	buf = buf[:w]
	shift := uint(lo & 63)
	wlo := lo >> 6
	for i := 0; i < w; i++ {
		var v uint64
		if wlo+i < len(words) {
			v = words[wlo+i] >> shift
		}
		if wlo+i+1 < len(words) {
			v |= words[wlo+i+1] << (64 - shift)
		}
		buf[i] = v
	}
	// Mask the tail beyond hi-lo so shifted windows never expose
	// bits past the window end.
	if r := uint((hi - lo) & 63); r != 0 {
		buf[w-1] &= (1 << r) - 1
	}
	return buf
}
