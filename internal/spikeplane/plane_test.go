package spikeplane

import (
	"math/rand"
	"testing"
)

// refLens covers the word-boundary cases the packed representation
// must get right: empty, single bit, one-below/at/above a word edge,
// and multi-word lengths.
var refLens = []int{0, 1, 7, 63, 64, 65, 127, 128, 129, 200, 256, 300}

// refDensities includes the degenerate all-zero and all-one planes.
var refDensities = []float64{0, 0.01, 0.1, 0.5, 0.9, 1}

func densePlane(r *rand.Rand, n int, density float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		if r.Float64() < density {
			v[i] = 1
		}
	}
	return v
}

func refIndices(v []float64) []int {
	var idx []int
	for i, x := range v {
		if x != 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

func TestPlaneMatchesDenseReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var p Plane
	for _, n := range refLens {
		for _, d := range refDensities {
			v := densePlane(r, n, d)
			p.Pack(v)
			want := refIndices(v)

			if got := p.Len(); got != n {
				t.Fatalf("n=%d d=%g: Len=%d", n, d, got)
			}
			if got := p.Count(); got != len(want) {
				t.Fatalf("n=%d d=%g: Count=%d want %d", n, d, got, len(want))
			}
			if got := p.IsZero(); got != (len(want) == 0) {
				t.Fatalf("n=%d d=%g: IsZero=%v with %d spikes", n, d, got, len(want))
			}
			if !p.Binary() {
				t.Fatalf("n=%d d=%g: all-ones plane not reported binary", n, d)
			}

			// Iterator agrees with the dense scan, in order.
			it := p.Iter()
			for k, wi := range want {
				gi, ok := it.Next()
				if !ok || gi != wi {
					t.Fatalf("n=%d d=%g: iter step %d got (%d,%v) want %d", n, d, k, gi, ok, wi)
				}
			}
			if gi, ok := it.Next(); ok {
				t.Fatalf("n=%d d=%g: iter yielded extra index %d", n, d, gi)
			}

			// AppendIndices agrees, including capacity reuse.
			buf := make([]int, 0, 4)
			got := p.AppendIndices(buf[:0])
			if len(got) != len(want) {
				t.Fatalf("n=%d d=%g: AppendIndices len %d want %d", n, d, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d d=%g: AppendIndices[%d]=%d want %d", n, d, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPlaneGradedValues(t *testing.T) {
	var p Plane
	p.Pack([]float64{0, 0.5, 0, -2, 1})
	if p.Binary() {
		t.Fatal("graded plane reported binary")
	}
	if got := p.Count(); got != 3 {
		t.Fatalf("Count=%d want 3", got)
	}
	want := []int{1, 3, 4}
	got := p.AppendIndices(nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: got %d want %d", i, got[i], want[i])
		}
	}

	p.Reset(8)
	p.Set(2)
	if !p.Binary() {
		t.Fatal("Reset should restore binary")
	}
	p.MarkGraded()
	if p.Binary() {
		t.Fatal("MarkGraded ignored")
	}
}

func TestPlaneEqualAndCopy(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var a, b, c Plane
	v := densePlane(r, 129, 0.3)
	a.Pack(v)
	b.Pack(v)
	if !a.EqualWords(&b) {
		t.Fatal("identical packs not equal")
	}
	v2 := append([]float64(nil), v...)
	// Flip one bit.
	if v2[70] == 0 {
		v2[70] = 1
	} else {
		v2[70] = 0
	}
	b.Pack(v2)
	if a.EqualWords(&b) {
		t.Fatal("differing planes reported equal")
	}
	b.Pack(v[:128])
	if a.EqualWords(&b) {
		t.Fatal("planes of different length reported equal")
	}

	c.CopyFrom(&a)
	if !c.EqualWords(&a) || c.Binary() != a.Binary() || c.Len() != a.Len() {
		t.Fatal("CopyFrom not a faithful copy")
	}
}

func TestCountAnd(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, n := range refLens {
		va := densePlane(r, n, 0.4)
		vb := densePlane(r, n, 0.4)
		var a, b Plane
		a.Pack(va)
		b.Pack(vb)
		want := 0
		for i := range va {
			if va[i] != 0 && vb[i] != 0 {
				want++
			}
		}
		if got := CountAnd(a.WordSlice(), b.WordSlice()); got != want {
			t.Fatalf("n=%d: CountAnd=%d want %d", n, got, want)
		}
	}
}

func TestWindow(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	v := densePlane(r, 300, 0.35)
	var p Plane
	p.Pack(v)
	var buf []uint64
	cases := [][2]int{
		{0, 300}, {0, 64}, {64, 128}, {128, 300}, {0, 1},
		{1, 65}, {63, 127}, {65, 300}, {37, 41}, {100, 100},
		{250, 300}, {5, 6},
	}
	for _, c := range cases {
		lo, hi := c[0], c[1]
		w := Window(p.WordSlice(), lo, hi, buf)
		if lo&63 != 0 {
			buf = w // recycled shift buffer
		}
		// Reference: indices of nonzero v in [lo,hi), rebased.
		var want []int
		for i := lo; i < hi; i++ {
			if v[i] != 0 {
				want = append(want, i-lo)
			}
		}
		it := IterWords(w)
		k := 0
		for {
			gi, ok := it.Next()
			if !ok {
				break
			}
			// Aligned views may expose bits past hi inside the
			// final word; ignore them like callers do.
			if gi >= hi-lo {
				if lo&63 == 0 {
					break
				}
				t.Fatalf("[%d,%d): shifted window leaked bit %d past end", lo, hi, gi)
			}
			if k >= len(want) || gi != want[k] {
				t.Fatalf("[%d,%d): window index %d got %d", lo, hi, k, gi)
			}
			k++
		}
		if k != len(want) {
			t.Fatalf("[%d,%d): window yielded %d indices want %d", lo, hi, k, len(want))
		}
	}
}

func TestWordsHelper(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for n, want := range cases {
		if got := Words(n); got != want {
			t.Fatalf("Words(%d)=%d want %d", n, got, want)
		}
	}
}

func TestPlaneResetReusesBacking(t *testing.T) {
	var p Plane
	p.Pack(densePlane(rand.New(rand.NewSource(19)), 256, 0.5))
	w0 := &p.words[0]
	p.Reset(200)
	if &p.words[0] != w0 {
		t.Fatal("Reset to smaller length reallocated backing array")
	}
	if !p.IsZero() {
		t.Fatal("Reset left bits set")
	}
}
