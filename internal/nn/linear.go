package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Linear is a fully-connected layer computing y = xWᵀ + b for a batch of
// row vectors.
type Linear struct {
	name    string
	In, Out int
	Weight  *Param // (Out, In)
	Bias    *Param // (Out)
	lastIn  *tensor.Tensor
}

// NewLinear constructs a fully-connected layer with He-initialized weights.
func NewLinear(name string, in, out int, r *rng.Rand) *Linear {
	w := tensor.New(out, in)
	HeInit(w, in, r)
	return &Linear{
		name: name, In: in, Out: out,
		Weight: NewParam(name+".weight", w),
		Bias:   NewParam(name+".bias", tensor.New(out)),
	}
}

// Name implements Layer.
func (l *Linear) Name() string { return l.name }

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// OutShape implements Shaper.
func (l *Linear) OutShape(in []int) []int {
	size := 1
	for _, d := range in {
		size *= d
	}
	if size != l.In {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got shape %v", l.name, l.In, in))
	}
	return []int{l.Out}
}

// ReceptiveField returns the number of crossbar rows one output neuron
// occupies: the full fan-in.
func (l *Linear) ReceptiveField() int { return l.In }

// Forward implements Layer. A 4-D input is flattened automatically.
func (l *Linear) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.NDim() != 2 {
		x = x.Reshape(x.Dim(0), -1)
	}
	if x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: %s got %v, want N×%d", l.name, x.Shape(), l.In))
	}
	l.lastIn = x
	out := tensor.MatMulTransB(x, l.Weight.Value) // N×Out
	bd := l.Bias.Value.Data()
	for i := 0; i < out.Dim(0); i++ {
		row := out.Row(i).Data()
		for j := range row {
			row[j] += bd[j]
		}
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := l.lastIn
	if x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	// dW += gradᵀ · x ; dB += column sums of grad ; dX = grad · W
	dw := tensor.MatMulTransA(grad, x) // Out×In
	l.Weight.Grad.AddInPlace(dw)
	bg := l.Bias.Grad.Data()
	for i := 0; i < grad.Dim(0); i++ {
		row := grad.Row(i).Data()
		for j, v := range row {
			bg[j] += v
		}
	}
	return tensor.MatMul(grad, l.Weight.Value) // N×In
}

// Flatten reshapes N×C×H×W activations to N×(C*H*W). It has no parameters.
type Flatten struct {
	name      string
	lastShape []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Shaper.
func (f *Flatten) OutShape(in []int) []int {
	size := 1
	for _, d := range in {
		size *= d
	}
	return []int{size}
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	f.lastShape = append([]int(nil), x.Shape()...)
	return x.Reshape(x.Dim(0), -1)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.lastShape...)
}
