package nn

import (
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss over a
// batch of logits (N×K) against integer labels, and the gradient of the
// loss with respect to the logits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic("nn: label count does not match batch size")
	}
	grad = tensor.New(n, k)
	total := 0.0
	for i := 0; i < n; i++ {
		row := logits.Row(i).Data()
		grow := grad.Row(i).Data()
		// log-sum-exp with max subtraction for stability
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - m)
		}
		logZ := m + math.Log(sum)
		y := labels[i]
		total += logZ - row[y]
		invN := 1.0 / float64(n)
		for j, v := range row {
			p := math.Exp(v - logZ)
			grow[j] = p * invN
		}
		grow[y] -= invN
	}
	return total / float64(n), grad
}

// Softmax returns the softmax probabilities of a batch of logits (N×K).
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		row := logits.Row(i).Data()
		orow := out.Row(i).Data()
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - m)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n := logits.Dim(0)
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		if logits.Row(i).ArgMax() == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
