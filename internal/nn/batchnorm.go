package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm2D normalizes each channel of an N×C×H×W activation to zero
// mean and unit variance over the batch and spatial dimensions, then
// applies a learned affine transform. At inference it uses running
// statistics. The conversion pipeline folds this layer into the preceding
// convolution (§V-A, "Handling Batch-Normalization Layers").
type BatchNorm2D struct {
	name     string
	C        int
	Eps      float64
	Momentum float64

	Gamma, Beta             *Param
	RunningMean, RunningVar *tensor.Tensor

	// cached for backward
	lastIn   *tensor.Tensor
	lastXHat *tensor.Tensor
	lastMean []float64
	lastVar  []float64
}

// NewBatchNorm2D constructs a batch-norm layer over c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	g := tensor.New(c).Fill(1)
	rv := tensor.New(c).Fill(1)
	return &BatchNorm2D{
		name: name, C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       NewParam(name+".gamma", g),
		Beta:        NewParam(name+".beta", tensor.New(c)),
		RunningMean: tensor.New(c),
		RunningVar:  rv,
	}
}

// Name implements Layer.
func (b *BatchNorm2D) Name() string { return b.name }

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// OutShape implements Shaper.
func (b *BatchNorm2D) OutShape(in []int) []int { return in }

// Forward implements Layer.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.NDim() != 4 || x.Dim(1) != b.C {
		panic(fmt.Sprintf("nn: %s got %v, want N×%d×H×W", b.name, x.Shape(), b.C))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	count := float64(n * h * w)
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()

	mean := make([]float64, c)
	variance := make([]float64, c)
	if training {
		for ch := 0; ch < c; ch++ {
			s := 0.0
			for i := 0; i < n; i++ {
				base := (i*c + ch) * h * w
				for j := 0; j < h*w; j++ {
					s += xd[base+j]
				}
			}
			mean[ch] = s / count
		}
		for ch := 0; ch < c; ch++ {
			s := 0.0
			for i := 0; i < n; i++ {
				base := (i*c + ch) * h * w
				for j := 0; j < h*w; j++ {
					d := xd[base+j] - mean[ch]
					s += d * d
				}
			}
			variance[ch] = s / count
			b.RunningMean.Data()[ch] = (1-b.Momentum)*b.RunningMean.Data()[ch] + b.Momentum*mean[ch]
			b.RunningVar.Data()[ch] = (1-b.Momentum)*b.RunningVar.Data()[ch] + b.Momentum*variance[ch]
		}
	} else {
		copy(mean, b.RunningMean.Data())
		copy(variance, b.RunningVar.Data())
	}

	xhat := tensor.New(x.Shape()...)
	hd := xhat.Data()
	gd, bd := b.Gamma.Value.Data(), b.Beta.Value.Data()
	for ch := 0; ch < c; ch++ {
		inv := 1.0 / math.Sqrt(variance[ch]+b.Eps)
		for i := 0; i < n; i++ {
			base := (i*c + ch) * h * w
			for j := 0; j < h*w; j++ {
				xh := (xd[base+j] - mean[ch]) * inv
				hd[base+j] = xh
				od[base+j] = gd[ch]*xh + bd[ch]
			}
		}
	}
	if training {
		b.lastIn = x
		b.lastXHat = xhat
		b.lastMean = mean
		b.lastVar = variance
	}
	return out
}

// Backward implements Layer (training-mode statistics).
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.lastXHat == nil {
		panic("nn: BatchNorm2D.Backward before training Forward")
	}
	n, c, h, w := grad.Dim(0), grad.Dim(1), grad.Dim(2), grad.Dim(3)
	count := float64(n * h * w)
	dx := tensor.New(grad.Shape()...)
	gd := grad.Data()
	hd := b.lastXHat.Data()
	dd := dx.Data()
	gammaD := b.Gamma.Value.Data()
	for ch := 0; ch < c; ch++ {
		// Accumulate dGamma, dBeta and the two reduction terms.
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * h * w
			for j := 0; j < h*w; j++ {
				dy := gd[base+j]
				sumDy += dy
				sumDyXhat += dy * hd[base+j]
			}
		}
		b.Gamma.Grad.Data()[ch] += sumDyXhat
		b.Beta.Grad.Data()[ch] += sumDy
		invStd := 1.0 / math.Sqrt(b.lastVar[ch]+b.Eps)
		scale := gammaD[ch] * invStd / count
		for i := 0; i < n; i++ {
			base := (i*c + ch) * h * w
			for j := 0; j < h*w; j++ {
				dy := gd[base+j]
				dd[base+j] = scale * (count*dy - sumDy - hd[base+j]*sumDyXhat)
			}
		}
	}
	return dx
}
