package nn

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dropout zeroes a random fraction of activations during training and
// rescales the survivors by 1/(1−p) (inverted dropout), so inference is a
// pass-through. It regularizes the larger benchmark networks; it is
// removed before conversion (a stateless identity at inference time, the
// converter treats it as absent).
type Dropout struct {
	name string
	// P is the drop probability in [0, 1).
	P    float64
	r    *rng.Rand
	mask *tensor.Tensor
}

// NewDropout constructs a dropout layer with its own random stream.
func NewDropout(name string, p float64, r *rng.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0, 1)")
	}
	return &Dropout{name: name, P: p, r: r}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutShape implements Shaper.
func (d *Dropout) OutShape(in []int) []int { return in }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if !training || d.P == 0 {
		d.mask = nil
		return x
	}
	scale := 1 / (1 - d.P)
	d.mask = tensor.New(x.Shape()...)
	out := tensor.New(x.Shape()...)
	md, od, xd := d.mask.Data(), out.Data(), x.Data()
	for i := range xd {
		if !d.r.Bernoulli(d.P) {
			md[i] = scale
			od[i] = xd[i] * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	out := grad.Clone()
	out.MulInPlace(d.mask)
	return out
}
