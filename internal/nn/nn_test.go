package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// numericalGrad estimates d loss / d x[i] by central differences for a
// scalar-valued function of a tensor.
func numericalGrad(f func() float64, x *tensor.Tensor, i int) float64 {
	const h = 1e-5
	orig := x.Data()[i]
	x.Data()[i] = orig + h
	plus := f()
	x.Data()[i] = orig - h
	minus := f()
	x.Data()[i] = orig
	return (plus - minus) / (2 * h)
}

// checkLayerGradients verifies the analytic input and parameter gradients
// of a layer against numerical differentiation, using sum-of-squares/2 of
// the output as the scalar loss so that dL/dy = y.
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	loss := func() float64 {
		y := layer.Forward(x, true)
		s := 0.0
		for _, v := range y.Data() {
			s += v * v
		}
		return s / 2
	}
	y := layer.Forward(x, true)
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	dx := layer.Backward(y.Clone())

	for i := 0; i < x.Size(); i += maxInt(1, x.Size()/17) {
		want := numericalGrad(loss, x, i)
		// Recompute forward state after numerical probing.
		y = layer.Forward(x, true)
		got := dx.Data()[i]
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("input grad [%d]: analytic %v vs numeric %v", i, got, want)
		}
	}
	// Re-establish gradients cleanly (numerical probing ran extra forwards).
	y = layer.Forward(x, true)
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	layer.Backward(y.Clone())
	for _, p := range layer.Params() {
		v := p.Value
		for i := 0; i < v.Size(); i += maxInt(1, v.Size()/13) {
			want := numericalGrad(loss, v, i)
			got := p.Grad.Data()[i]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("%s grad [%d]: analytic %v vs numeric %v", p.Name, i, got, want)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func randTensor(r *rng.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data() {
		x.Data()[i] = r.NormFloat64()
	}
	return x
}

func TestLinearGradients(t *testing.T) {
	r := rng.New(1)
	l := NewLinear("fc", 7, 5, r)
	checkLayerGradients(t, l, randTensor(r, 3, 7), 1e-4)
}

func TestConv2DGradients(t *testing.T) {
	r := rng.New(2)
	c := NewConv2D("conv", 3, 4, 3, 3, 1, 1, 1, r)
	checkLayerGradients(t, c, randTensor(r, 2, 3, 5, 5), 1e-4)
}

func TestConv2DStridedGradients(t *testing.T) {
	r := rng.New(3)
	c := NewConv2D("conv", 2, 3, 3, 3, 2, 1, 1, r)
	checkLayerGradients(t, c, randTensor(r, 2, 2, 7, 7), 1e-4)
}

func TestDepthwiseConvGradients(t *testing.T) {
	r := rng.New(4)
	c := NewConv2D("dwconv", 4, 4, 3, 3, 1, 1, 4, r)
	checkLayerGradients(t, c, randTensor(r, 2, 4, 5, 5), 1e-4)
}

func TestGroupedConvGradients(t *testing.T) {
	r := rng.New(5)
	c := NewConv2D("gconv", 4, 6, 3, 3, 1, 0, 2, r)
	checkLayerGradients(t, c, randTensor(r, 2, 4, 6, 6), 1e-4)
}

func TestReLUGradients(t *testing.T) {
	r := rng.New(6)
	l := NewReLU("relu")
	checkLayerGradients(t, l, randTensor(r, 4, 9), 1e-4)
}

func TestClippedReLUForward(t *testing.T) {
	l := NewClippedReLU("crelu", 1.0)
	x := tensor.FromSlice([]float64{-1, 0.5, 2}, 1, 3)
	y := l.Forward(x, false)
	want := []float64{0, 0.5, 1}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("clipped relu: got %v want %v", y.Data(), want)
		}
	}
}

func TestClippedReLUGradientZeroBeyondClip(t *testing.T) {
	l := NewClippedReLU("crelu", 1.0)
	x := tensor.FromSlice([]float64{-1, 0.5, 2}, 1, 3)
	l.Forward(x, true)
	g := l.Backward(tensor.FromSlice([]float64{1, 1, 1}, 1, 3))
	want := []float64{0, 1, 0}
	for i, v := range g.Data() {
		if v != want[i] {
			t.Fatalf("clipped relu grad: got %v want %v", g.Data(), want)
		}
	}
}

func TestAvgPoolGradients(t *testing.T) {
	r := rng.New(7)
	p := NewAvgPool2D("pool", 2, 2)
	checkLayerGradients(t, p, randTensor(r, 2, 3, 4, 4), 1e-4)
}

func TestMaxPoolForward(t *testing.T) {
	p := NewMaxPool2D("pool", 2, 2)
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y := p.Forward(x, false)
	want := []float64{6, 8, 14, 16}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("maxpool: got %v want %v", y.Data(), want)
		}
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	p := NewMaxPool2D("pool", 2, 2)
	x := tensor.FromSlice([]float64{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	p.Forward(x, true)
	g := p.Backward(tensor.FromSlice([]float64{10}, 1, 1, 1, 1))
	want := []float64{0, 0, 0, 10}
	for i, v := range g.Data() {
		if v != want[i] {
			t.Fatalf("maxpool grad: got %v want %v", g.Data(), want)
		}
	}
}

func TestBatchNormGradients(t *testing.T) {
	r := rng.New(8)
	b := NewBatchNorm2D("bn", 3)
	checkLayerGradients(t, b, randTensor(r, 4, 3, 3, 3), 1e-3)
}

func TestBatchNormNormalizes(t *testing.T) {
	r := rng.New(9)
	b := NewBatchNorm2D("bn", 2)
	x := randTensor(r, 8, 2, 4, 4)
	// Shift channel 1 strongly.
	for i := 0; i < 8; i++ {
		img := x.Slice4D(i)
		for j := 0; j < 16; j++ {
			img.Data()[16+j] += 10
		}
	}
	y := b.Forward(x, true)
	// Per-channel mean of the output should be ~0 and variance ~1.
	for ch := 0; ch < 2; ch++ {
		var s, sq float64
		n := 0
		for i := 0; i < 8; i++ {
			img := y.Slice4D(i)
			for j := 0; j < 16; j++ {
				v := img.Data()[ch*16+j]
				s += v
				sq += v * v
				n++
			}
		}
		mean := s / float64(n)
		variance := sq/float64(n) - mean*mean
		if math.Abs(mean) > 1e-8 {
			t.Fatalf("channel %d mean %v", ch, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d variance %v", ch, variance)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	r := rng.New(10)
	b := NewBatchNorm2D("bn", 1)
	// Train on shifted data so running stats move away from (0, 1).
	for i := 0; i < 50; i++ {
		x := randTensor(r, 8, 1, 2, 2)
		x.Apply(func(v float64) float64 { return v*3 + 5 })
		b.Forward(x, true)
	}
	// At inference a constant input should map deterministically via the
	// running stats, independent of batch composition.
	x1 := tensor.New(1, 1, 2, 2).Fill(5)
	x2 := tensor.New(3, 1, 2, 2).Fill(5)
	y1 := b.Forward(x1, false)
	y2 := b.Forward(x2, false)
	if math.Abs(y1.Data()[0]-y2.Data()[0]) > 1e-12 {
		t.Fatal("inference output depends on batch")
	}
	// Mean input (≈5) should map near 0.
	if math.Abs(y1.Data()[0]) > 0.5 {
		t.Fatalf("running stats off: f(5) = %v", y1.Data()[0])
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	r := rng.New(11)
	f := NewFlatten("flat")
	x := randTensor(r, 2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	g := f.Backward(y)
	if !tensor.SameShape(g, x) {
		t.Fatalf("backward shape %v", g.Shape())
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	r := rng.New(12)
	logits := randTensor(r, 3, 5)
	labels := []int{1, 4, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	for i := 0; i < logits.Size(); i++ {
		want := numericalGrad(func() float64 {
			l, _ := SoftmaxCrossEntropy(logits, labels)
			return l
		}, logits, i)
		if math.Abs(grad.Data()[i]-want) > 1e-6 {
			t.Fatalf("xent grad [%d]: %v vs %v", i, grad.Data()[i], want)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := rng.New(13)
	p := Softmax(randTensor(r, 4, 7))
	for i := 0; i < 4; i++ {
		if math.Abs(p.Row(i).Sum()-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, p.Row(i).Sum())
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		1, 2, 0,
		5, 1, 1,
		0, 0, 3,
	}, 3, 3)
	if got := Accuracy(logits, []int{1, 0, 2}); got != 1 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := Accuracy(logits, []int{0, 0, 2}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
}

func TestNetworkForwardBackwardShapes(t *testing.T) {
	r := rng.New(14)
	net := NewNetwork("tiny",
		NewConv2D("c1", 1, 4, 3, 3, 1, 1, 1, r),
		NewReLU("r1"),
		NewAvgPool2D("p1", 2, 2),
		NewFlatten("flat"),
		NewLinear("fc", 4*4*4, 3, r),
	)
	x := randTensor(r, 2, 1, 8, 8)
	y := net.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 3 {
		t.Fatalf("network out shape %v", y.Shape())
	}
	_, grad := SoftmaxCrossEntropy(y, []int{0, 2})
	dx := net.Backward(grad)
	if !tensor.SameShape(dx, x) {
		t.Fatalf("network dx shape %v", dx.Shape())
	}
	shape := net.OutShape([]int{1, 8, 8})
	if len(shape) != 1 || shape[0] != 3 {
		t.Fatalf("OutShape = %v", shape)
	}
}

func TestForwardCaptureLayerCount(t *testing.T) {
	r := rng.New(15)
	net := NewNetwork("cap",
		NewLinear("fc1", 4, 8, r),
		NewReLU("r1"),
		NewLinear("fc2", 8, 2, r),
	)
	outs := net.ForwardCapture(randTensor(r, 1, 4), false)
	if len(outs) != 3 {
		t.Fatalf("captured %d outputs", len(outs))
	}
	if outs[2].Dim(1) != 2 {
		t.Fatalf("last capture shape %v", outs[2].Shape())
	}
}

func TestReceptiveField(t *testing.T) {
	r := rng.New(16)
	c := NewConv2D("c", 64, 128, 3, 3, 1, 1, 1, r)
	if c.ReceptiveField() != 576 {
		t.Fatalf("conv Rf = %d", c.ReceptiveField())
	}
	dw := NewConv2D("dw", 64, 64, 3, 3, 1, 1, 64, r)
	if dw.ReceptiveField() != 9 {
		t.Fatalf("depthwise Rf = %d", dw.ReceptiveField())
	}
	l := NewLinear("fc", 512, 10, r)
	if l.ReceptiveField() != 512 {
		t.Fatalf("linear Rf = %d", l.ReceptiveField())
	}
}

func TestParamCount(t *testing.T) {
	r := rng.New(17)
	net := NewNetwork("pc", NewLinear("fc", 10, 5, r))
	if net.ParamCount() != 55 {
		t.Fatalf("ParamCount = %d", net.ParamCount())
	}
}

func TestDropoutInferencePassThrough(t *testing.T) {
	d := NewDropout("drop", 0.5, rng.New(1))
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 4)
	y := d.Forward(x, false)
	for i := range x.Data() {
		if y.Data()[i] != x.Data()[i] {
			t.Fatal("inference dropout must be identity")
		}
	}
}

func TestDropoutTrainingDropsAndRescales(t *testing.T) {
	d := NewDropout("drop", 0.5, rng.New(2))
	x := tensor.New(1, 1000).Fill(1)
	y := d.Forward(x, true)
	zeros := 0
	for _, v := range y.Data() {
		switch v {
		case 0:
			zeros++
		case 2: // 1/(1-0.5)
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropped %d of 1000 at p=0.5", zeros)
	}
	// Expected value preserved: mean ≈ 1.
	if m := y.Mean(); math.Abs(m-1) > 0.15 {
		t.Fatalf("mean %v after inverted dropout", m)
	}
}

func TestDropoutBackwardMasksGradient(t *testing.T) {
	d := NewDropout("drop", 0.5, rng.New(3))
	x := tensor.New(1, 100).Fill(1)
	y := d.Forward(x, true)
	g := d.Backward(tensor.New(1, 100).Fill(1))
	for i := range y.Data() {
		if (y.Data()[i] == 0) != (g.Data()[i] == 0) {
			t.Fatal("gradient mask must match forward mask")
		}
	}
}

func TestDropoutRejectsBadProbability(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 accepted")
		}
	}()
	NewDropout("bad", 1.0, rng.New(1))
}
