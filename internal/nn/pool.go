package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// AvgPool2D averages non-overlapping (or strided) windows. The paper's
// conversion pipeline (§V-A) requires average pooling because a crossbar
// can implement it as a fixed-weight dot product, and because max-pooling
// over binary spikes destroys rate information.
type AvgPool2D struct {
	name      string
	K, Stride int
	lastShape []int
}

// NewAvgPool2D constructs an average pooling layer with window k and
// stride s (s = k for the usual non-overlapping pooling).
func NewAvgPool2D(name string, k, stride int) *AvgPool2D {
	return &AvgPool2D{name: name, K: k, Stride: stride}
}

// Name implements Layer.
func (p *AvgPool2D) Name() string { return p.name }

// Params implements Layer.
func (p *AvgPool2D) Params() []*Param { return nil }

// OutShape implements Shaper.
func (p *AvgPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects C×H×W, got %v", p.name, in))
	}
	return []int{in[0], tensor.ConvOutSize(in[1], p.K, p.Stride, 0), tensor.ConvOutSize(in[2], p.K, p.Stride, 0)}
}

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := tensor.ConvOutSize(h, p.K, p.Stride, 0)
	ow := tensor.ConvOutSize(w, p.K, p.Stride, 0)
	p.lastShape = []int{n, c, h, w}
	out := tensor.New(n, c, oh, ow)
	inv := 1.0 / float64(p.K*p.K)
	xd, od := x.Data(), out.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			inBase := (i*c + ch) * h * w
			outBase := (i*c + ch) * oh * ow
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					s := 0.0
					for ki := 0; ki < p.K; ki++ {
						rowBase := inBase + (oi*p.Stride+ki)*w + oj*p.Stride
						for kj := 0; kj < p.K; kj++ {
							s += xd[rowBase+kj]
						}
					}
					od[outBase+oi*ow+oj] = s * inv
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.lastShape == nil {
		panic("nn: AvgPool2D.Backward before Forward")
	}
	n, c, h, w := p.lastShape[0], p.lastShape[1], p.lastShape[2], p.lastShape[3]
	oh, ow := grad.Dim(2), grad.Dim(3)
	dx := tensor.New(n, c, h, w)
	inv := 1.0 / float64(p.K*p.K)
	gd, dd := grad.Data(), dx.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			inBase := (i*c + ch) * h * w
			outBase := (i*c + ch) * oh * ow
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					g := gd[outBase+oi*ow+oj] * inv
					for ki := 0; ki < p.K; ki++ {
						rowBase := inBase + (oi*p.Stride+ki)*w + oj*p.Stride
						for kj := 0; kj < p.K; kj++ {
							dd[rowBase+kj] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// MaxPool2D takes the maximum of each window. It exists so that the
// conversion study can quantify the accuracy cost of replacing max with
// average pooling (§V-A); the NEBULA-mapped networks use AvgPool2D.
type MaxPool2D struct {
	name      string
	K, Stride int
	lastShape []int
	argmax    []int
}

// NewMaxPool2D constructs a max pooling layer.
func NewMaxPool2D(name string, k, stride int) *MaxPool2D {
	return &MaxPool2D{name: name, K: k, Stride: stride}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.name }

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// OutShape implements Shaper.
func (p *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects C×H×W, got %v", p.name, in))
	}
	return []int{in[0], tensor.ConvOutSize(in[1], p.K, p.Stride, 0), tensor.ConvOutSize(in[2], p.K, p.Stride, 0)}
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := tensor.ConvOutSize(h, p.K, p.Stride, 0)
	ow := tensor.ConvOutSize(w, p.K, p.Stride, 0)
	p.lastShape = []int{n, c, h, w}
	out := tensor.New(n, c, oh, ow)
	p.argmax = make([]int, out.Size())
	xd, od := x.Data(), out.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			inBase := (i*c + ch) * h * w
			outBase := (i*c + ch) * oh * ow
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					best := math.Inf(-1)
					bestIdx := -1
					for ki := 0; ki < p.K; ki++ {
						rowBase := inBase + (oi*p.Stride+ki)*w + oj*p.Stride
						for kj := 0; kj < p.K; kj++ {
							if v := xd[rowBase+kj]; v > best {
								best = v
								bestIdx = rowBase + kj
							}
						}
					}
					od[outBase+oi*ow+oj] = best
					p.argmax[outBase+oi*ow+oj] = bestIdx
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.lastShape == nil {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	dx := tensor.New(p.lastShape...)
	dd := dx.Data()
	for i, g := range grad.Data() {
		dd[p.argmax[i]] += g
	}
	return dx
}
