package nn

import (
	"math"

	"repro/internal/tensor"
)

// ReLU is the rectified-linear activation max(0, x), optionally saturating
// at a clip ceiling. A finite Clip models the saturating rectified linear
// neuron realized by the DW-MTJ non-spiking device (Fig. 2(b)): the domain
// wall cannot travel past the end of the free layer, so the transfer
// function saturates. Clip = +Inf gives a standard ReLU.
type ReLU struct {
	name   string
	Clip   float64
	lastIn *tensor.Tensor
}

// NewReLU constructs an unclipped ReLU.
func NewReLU(name string) *ReLU { return &ReLU{name: name, Clip: math.Inf(1)} }

// NewClippedReLU constructs a saturating ReLU with ceiling clip.
func NewClippedReLU(name string, clip float64) *ReLU {
	return &ReLU{name: name, Clip: clip}
}

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Shaper.
func (r *ReLU) OutShape(in []int) []int { return in }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	r.lastIn = x
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		} else if v > r.Clip {
			d[i] = r.Clip
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.lastIn == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	out := grad.Clone()
	in := r.lastIn.Data()
	d := out.Data()
	for i := range d {
		if in[i] <= 0 || in[i] >= r.Clip {
			d[i] = 0
		}
	}
	return out
}
