package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution layer with optional channel groups. Groups
// equal to the input channel count gives the depthwise convolution used by
// MobileNet's depthwise-separable blocks; groups of 1 gives a dense
// convolution.
type Conv2D struct {
	name                string
	InC, OutC           int
	KH, KW, Stride, Pad int
	Groups              int
	Weight              *Param // (OutC, InC/Groups, KH, KW)
	Bias                *Param // (OutC)

	lastInput *tensor.Tensor
	lastCols  [][]*tensor.Tensor // per-sample, per-group column matrices
}

// NewConv2D constructs a convolution layer with He-initialized weights.
func NewConv2D(name string, inC, outC, kh, kw, stride, pad, groups int, r *rng.Rand) *Conv2D {
	if groups < 1 || inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("nn: invalid groups %d for conv %d→%d", groups, inC, outC))
	}
	w := tensor.New(outC, inC/groups, kh, kw)
	HeInit(w, inC/groups*kh*kw, r)
	b := tensor.New(outC)
	return &Conv2D{
		name: name, InC: inC, OutC: outC, KH: kh, KW: kw,
		Stride: stride, Pad: pad, Groups: groups,
		Weight: NewParam(name+".weight", w),
		Bias:   NewParam(name+".bias", b),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// OutShape implements Shaper.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects C×H×W input shape, got %v", c.name, in))
	}
	oh := tensor.ConvOutSize(in[1], c.KH, c.Stride, c.Pad)
	ow := tensor.ConvOutSize(in[2], c.KW, c.Stride, c.Pad)
	return []int{c.OutC, oh, ow}
}

// ReceptiveField returns KH*KW*(InC/Groups), the number of crossbar rows a
// single output kernel occupies when flattened per Fig. 5 of the paper.
func (c *Conv2D) ReceptiveField() int { return c.KH * c.KW * c.InC / c.Groups }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.NDim() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got input %v, want N×%d×H×W", c.name, x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh := tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad)
	ow := tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
	out := tensor.New(n, c.OutC, oh, ow)

	gcIn := c.InC / c.Groups
	gcOut := c.OutC / c.Groups
	// Weight viewed per group as gcOut × (gcIn*KH*KW).
	wFlat := c.Weight.Value.Reshape(c.OutC, gcIn*c.KH*c.KW)

	c.lastInput = x
	c.lastCols = make([][]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		img := x.Slice4D(i)
		c.lastCols[i] = make([]*tensor.Tensor, c.Groups)
		for g := 0; g < c.Groups; g++ {
			sub := groupChannels(img, g*gcIn, gcIn)
			cols := tensor.Im2Col(sub, c.KH, c.KW, c.Stride, c.Pad)
			c.lastCols[i][g] = cols
			wg := sliceRows(wFlat, g*gcOut, gcOut)
			res := tensor.MatMul(wg, cols) // gcOut × (oh*ow)
			dst := out.Slice4D(i)
			for oc := 0; oc < gcOut; oc++ {
				bias := c.Bias.Value.Data()[g*gcOut+oc]
				srcRow := res.Row(oc).Data()
				dstBase := (g*gcOut + oc) * oh * ow
				dd := dst.Data()
				for j, v := range srcRow {
					dd[dstBase+j] = v + bias
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastInput
	if x == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh := grad.Dim(2)
	ow := grad.Dim(3)
	gcIn := c.InC / c.Groups
	gcOut := c.OutC / c.Groups
	wFlat := c.Weight.Value.Reshape(c.OutC, gcIn*c.KH*c.KW)
	gwFlat := c.Weight.Grad.Reshape(c.OutC, gcIn*c.KH*c.KW)
	dx := tensor.New(x.Shape()...)

	for i := 0; i < n; i++ {
		gradImg := grad.Slice4D(i)
		dxImg := dx.Slice4D(i)
		for g := 0; g < c.Groups; g++ {
			// Gradient rows for this group: gcOut × (oh*ow).
			gy := tensor.New(gcOut, oh*ow)
			for oc := 0; oc < gcOut; oc++ {
				src := gradImg.Data()[(g*gcOut+oc)*oh*ow : (g*gcOut+oc+1)*oh*ow]
				copy(gy.Row(oc).Data(), src)
				// Bias gradient: sum over spatial positions.
				s := 0.0
				for _, v := range src {
					s += v
				}
				c.Bias.Grad.Data()[g*gcOut+oc] += s
			}
			cols := c.lastCols[i][g]
			// dW += gy · colsᵀ
			dwg := tensor.MatMulTransB(gy, cols) // gcOut × (gcIn*KH*KW)
			for oc := 0; oc < gcOut; oc++ {
				dst := gwFlat.Row(g*gcOut + oc).Data()
				src := dwg.Row(oc).Data()
				for j, v := range src {
					dst[j] += v
				}
			}
			// dCols = Wᵀ · gy, then fold back to the input image.
			wg := sliceRows(wFlat, g*gcOut, gcOut)
			dcols := tensor.MatMulTransA(wg, gy) // (gcIn*KH*KW) × (oh*ow)
			dimg := tensor.Col2Im(dcols, gcIn, h, w, c.KH, c.KW, c.Stride, c.Pad)
			copyIntoChannels(dxImg, dimg, g*gcIn)
		}
	}
	return dx
}

// groupChannels returns channels [start, start+count) of a C×H×W tensor as
// a view (the channels are contiguous in NCHW layout).
func groupChannels(img *tensor.Tensor, start, count int) *tensor.Tensor {
	h, w := img.Dim(1), img.Dim(2)
	sz := h * w
	return tensor.FromSlice(img.Data()[start*sz:(start+count)*sz], count, h, w)
}

// sliceRows returns rows [start, start+count) of a 2-D tensor as a view.
func sliceRows(m *tensor.Tensor, start, count int) *tensor.Tensor {
	cols := m.Dim(1)
	return tensor.FromSlice(m.Data()[start*cols:(start+count)*cols], count, cols)
}

// copyIntoChannels adds src (c×H×W) into dst starting at channel offset.
func copyIntoChannels(dst, src *tensor.Tensor, offset int) {
	h, w := src.Dim(1), src.Dim(2)
	sz := h * w
	dd := dst.Data()
	sd := src.Data()
	base := offset * sz
	for i, v := range sd {
		dd[base+i] += v
	}
}
