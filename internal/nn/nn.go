// Package nn implements the artificial-neural-network substrate of the
// NEBULA reproduction: layers with forward and backward passes, parameter
// handling, and a Sequential container.
//
// The package supports exactly the layer types the paper's workloads need —
// convolution (dense and depthwise-separable), fully-connected, ReLU,
// average/max pooling, batch normalization and flatten — and is trained with
// plain SGD from package train. Activations are NCHW for convolutional
// layers and N×D for fully-connected layers.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is a trainable parameter together with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter and matching zero gradient.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Fill(0) }

// Layer is a differentiable network stage. Forward must be called before
// Backward; layers cache whatever they need for the backward pass.
type Layer interface {
	// Name identifies the layer for reporting and mapping.
	Name() string
	// Forward computes the layer output for a batch. The training flag
	// selects batch statistics in BatchNorm and similar layers.
	Forward(x *tensor.Tensor, training bool) *tensor.Tensor
	// Backward propagates the loss gradient, accumulating parameter
	// gradients and returning the gradient with respect to the input.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Shaper is implemented by layers that can report their output shape for a
// given input shape (excluding the batch dimension). The mapper uses it to
// derive per-layer dimensions without running data through the network.
type Shaper interface {
	OutShape(in []int) []int
}

// Network is a sequential composition of layers.
type Network struct {
	name   string
	layers []Layer
}

// NewNetwork creates an empty sequential network with the given name.
func NewNetwork(name string, layers ...Layer) *Network {
	return &Network{name: name, layers: layers}
}

// Name returns the network's name.
func (n *Network) Name() string { return n.name }

// Add appends a layer.
func (n *Network) Add(l Layer) *Network {
	n.layers = append(n.layers, l)
	return n
}

// Layers returns the layer list (not a copy).
func (n *Network) Layers() []Layer { return n.layers }

// Forward runs the full network.
func (n *Network) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	for _, l := range n.layers {
		x = l.Forward(x, training)
	}
	return x
}

// ForwardCapture runs the network and returns the output of every layer.
// Index i holds the output of layer i. The conversion and correlation
// analyses use these per-layer activations.
func (n *Network) ForwardCapture(x *tensor.Tensor, training bool) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(n.layers))
	for i, l := range n.layers {
		x = l.Forward(x, training)
		outs[i] = x
	}
	return outs
}

// Backward propagates a gradient through all layers in reverse.
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters of the network.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar parameters.
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Size()
	}
	return total
}

// OutShape propagates an input shape (excluding batch) through all layers.
// It panics if any layer does not implement Shaper.
func (n *Network) OutShape(in []int) []int {
	for _, l := range n.layers {
		s, ok := l.(Shaper)
		if !ok {
			panic(fmt.Sprintf("nn: layer %s cannot report its output shape", l.Name()))
		}
		in = s.OutShape(in)
	}
	return in
}

// Summary returns a human-readable multi-line description of the network.
func (n *Network) Summary(inShape []int) string {
	s := fmt.Sprintf("Network %q\n", n.name)
	shape := inShape
	for i, l := range n.layers {
		if sh, ok := l.(Shaper); ok {
			shape = sh.OutShape(shape)
		}
		s += fmt.Sprintf("  %2d: %-28s out=%v\n", i, l.Name(), shape)
	}
	s += fmt.Sprintf("  params: %d\n", n.ParamCount())
	return s
}
