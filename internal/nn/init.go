package nn

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// HeInit fills w with zero-mean gaussian values of standard deviation
// sqrt(2/fanIn), the standard initialization for ReLU networks.
func HeInit(w *tensor.Tensor, fanIn int, r *rng.Rand) {
	std := math.Sqrt(2.0 / float64(fanIn))
	d := w.Data()
	for i := range d {
		d[i] = r.NormFloat64() * std
	}
}

// XavierInit fills w with uniform values in ±sqrt(6/(fanIn+fanOut)).
func XavierInit(w *tensor.Tensor, fanIn, fanOut int, r *rng.Rand) {
	bound := math.Sqrt(6.0 / float64(fanIn+fanOut))
	d := w.Data()
	for i := range d {
		d[i] = (2*r.Float64() - 1) * bound
	}
}
