package noc

import (
	"testing"
	"testing/quick"
)

func TestRouteXYOrder(t *testing.T) {
	m := New(DefaultConfig())
	path := m.Route(Node{0, 0}, Node{2, 2})
	want := []Node{{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}}
	if len(path) != len(want) {
		t.Fatalf("path %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
}

func TestRouteSelf(t *testing.T) {
	m := New(DefaultConfig())
	path := m.Route(Node{3, 3}, Node{3, 3})
	if len(path) != 1 {
		t.Fatalf("self route %v", path)
	}
}

func TestRouteOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(DefaultConfig()).Route(Node{0, 0}, Node{99, 0})
}

func TestHopsManhattan(t *testing.T) {
	m := New(DefaultConfig())
	if err := quick.Check(func(a, b, c, d uint8) bool {
		src := Node{int(a) % 14, int(b) % 14}
		dst := Node{int(c) % 14, int(d) % 14}
		return m.Hops(src, dst) == len(m.Route(src, dst))-1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendLatencyUncontended(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	// 64-bit packet = 2 flits over 3 hops: 3·HopCycles + (flits−1).
	r := m.Send(Node{0, 0}, Node{3, 0}, 64, 0)
	want := int64(3*cfg.HopCycles + 1)
	if r.LatencyCycles != want {
		t.Fatalf("latency %d, want %d", r.LatencyCycles, want)
	}
	if r.Hops != 3 || r.Flits != 2 {
		t.Fatalf("hops %d flits %d", r.Hops, r.Flits)
	}
}

func TestSendContentionSerializes(t *testing.T) {
	m := New(DefaultConfig())
	a := m.Send(Node{0, 0}, Node{1, 0}, 320, 0) // 10 flits on link (0,0)→(1,0)
	b := m.Send(Node{0, 0}, Node{1, 0}, 320, 0)
	if b.ArrivalCycle <= a.ArrivalCycle {
		t.Fatalf("second packet not delayed: %d vs %d", b.ArrivalCycle, a.ArrivalCycle)
	}
}

func TestDisjointPathsNoContention(t *testing.T) {
	m := New(DefaultConfig())
	a := m.Send(Node{0, 0}, Node{1, 0}, 64, 0)
	b := m.Send(Node{0, 1}, Node{1, 1}, 64, 0) // different row: disjoint links
	if a.LatencyCycles != b.LatencyCycles {
		t.Fatalf("disjoint packets interfered: %d vs %d", a.LatencyCycles, b.LatencyCycles)
	}
}

func TestLocalDeliveryFree(t *testing.T) {
	m := New(DefaultConfig())
	r := m.Send(Node{2, 2}, Node{2, 2}, 128, 7)
	if r.LatencyCycles != 0 || r.EnergyPJ != 0 {
		t.Fatalf("local delivery cost: %+v", r)
	}
}

func TestEnergyProportionalToBitsAndHops(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	r1 := m.Send(Node{0, 0}, Node{1, 0}, 100, 0)
	r2 := m.Send(Node{5, 5}, Node{7, 5}, 100, 0) // 2 hops
	if r2.EnergyPJ != 2*r1.EnergyPJ {
		t.Fatalf("energy not linear in hops: %v vs %v", r2.EnergyPJ, r1.EnergyPJ)
	}
	r3 := m.Send(Node{0, 5}, Node{1, 5}, 200, 0)
	if r3.EnergyPJ != 2*r1.EnergyPJ {
		t.Fatalf("energy not linear in bits: %v vs %v", r3.EnergyPJ, r1.EnergyPJ)
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := New(DefaultConfig())
	m.Send(Node{0, 0}, Node{2, 0}, 64, 0)
	m.Send(Node{0, 0}, Node{0, 3}, 32, 0)
	s := m.Stats()
	if s.Packets != 2 {
		t.Fatalf("packets %d", s.Packets)
	}
	if s.EnergyPJ <= 0 || s.MakespanCycles <= 0 {
		t.Fatalf("stats %+v", s)
	}
	m.ResetStats()
	if m.Stats().Packets != 0 {
		t.Fatal("reset failed")
	}
}

func TestMeanHops(t *testing.T) {
	if MeanHops(14, 14) <= 0 {
		t.Fatal("mean hops must be positive")
	}
	if MeanHops(14, 14) != 28.0/3 {
		t.Fatalf("mean hops %v", MeanHops(14, 14))
	}
}

func TestTransferEnergyMatchesAnalytic(t *testing.T) {
	m := New(DefaultConfig())
	e := m.TransferEnergyPJ(1000)
	want := 1000 * MeanHops(14, 14) * m.Cfg.EnergyPerBitPJ
	if e != want {
		t.Fatalf("transfer energy %v, want %v", e, want)
	}
}

func TestBisectionPositive(t *testing.T) {
	if New(DefaultConfig()).Bisection() <= 0 {
		t.Fatal("bisection must be positive")
	}
}
