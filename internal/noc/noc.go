// Package noc models the 2-D mesh network-on-chip that connects NEBULA's
// neural cores (§IV-A, Fig. 6(b)). It provides dimension-ordered (XY)
// routing, a deterministic link-contention timing model, and per-bit hop
// energy accounting used by the chip-level energy analysis.
package noc

import (
	"fmt"
	"math"
)

// Config holds mesh parameters. Values derive from the 1.2 GHz operating
// frequency of Table III and standard mesh-router assumptions.
type Config struct {
	Width, Height int
	// LinkBits is the flit width in bits.
	LinkBits int
	// HopCycles is the router+link traversal latency in clock cycles.
	HopCycles int
	// ClockHz is the network clock.
	ClockHz float64
	// EnergyPerBitPJ is the energy to move one bit one hop (router +
	// link), in picojoules.
	EnergyPerBitPJ float64
}

// DefaultConfig matches the 14×14 NC grid of Table III.
func DefaultConfig() Config {
	return Config{
		Width: 14, Height: 14,
		LinkBits:       32,
		HopCycles:      2,
		ClockHz:        1.2e9,
		EnergyPerBitPJ: 0.02,
	}
}

// Node identifies a mesh coordinate.
type Node struct{ X, Y int }

// String implements fmt.Stringer.
func (n Node) String() string { return fmt.Sprintf("(%d,%d)", n.X, n.Y) }

// link identifies a directed mesh link by its endpoints.
type link struct{ from, to Node }

// Mesh is a deterministic mesh simulator. It is not safe for concurrent
// use.
type Mesh struct {
	Cfg Config
	// busyUntil tracks, per directed link, the cycle at which the link
	// becomes free.
	busyUntil map[link]int64
	// stats
	packets   int64
	flits     int64
	hopFlits  int64
	energyPJ  float64
	lastCycle int64
}

// New creates a mesh.
func New(cfg Config) *Mesh {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic("noc: mesh dimensions must be positive")
	}
	return &Mesh{Cfg: cfg, busyUntil: make(map[link]int64)}
}

// InBounds reports whether n is a valid node.
func (m *Mesh) InBounds(n Node) bool {
	return n.X >= 0 && n.X < m.Cfg.Width && n.Y >= 0 && n.Y < m.Cfg.Height
}

// Route returns the XY (dimension-ordered) path from src to dst,
// inclusive of both endpoints.
func (m *Mesh) Route(src, dst Node) []Node {
	if !m.InBounds(src) || !m.InBounds(dst) {
		panic(fmt.Sprintf("noc: route %v→%v out of %d×%d mesh", src, dst, m.Cfg.Width, m.Cfg.Height))
	}
	path := []Node{src}
	cur := src
	for cur.X != dst.X {
		if cur.X < dst.X {
			cur.X++
		} else {
			cur.X--
		}
		path = append(path, cur)
	}
	for cur.Y != dst.Y {
		if cur.Y < dst.Y {
			cur.Y++
		} else {
			cur.Y--
		}
		path = append(path, cur)
	}
	return path
}

// Hops returns the Manhattan distance between two nodes.
func (m *Mesh) Hops(src, dst Node) int {
	dx := src.X - dst.X
	if dx < 0 {
		dx = -dx
	}
	dy := src.Y - dst.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Result reports the outcome of a packet send.
type Result struct {
	// ArrivalCycle is the cycle at which the tail flit reaches dst.
	ArrivalCycle int64
	// LatencyCycles is ArrivalCycle − injection cycle.
	LatencyCycles int64
	Hops          int
	Flits         int
	EnergyPJ      float64
}

// Send injects a packet of `bits` bits at cycle `at` and walks it through
// the mesh with wormhole-style link occupancy: each directed link is busy
// for the packet's full flit count, and a packet waits for every link on
// its path to free up. Deterministic and order-sensitive, the model
// captures serialization and contention without per-flit event simulation.
func (m *Mesh) Send(src, dst Node, bits int, at int64) Result {
	if bits <= 0 {
		panic("noc: packet must carry at least one bit")
	}
	flits := (bits + m.Cfg.LinkBits - 1) / m.Cfg.LinkBits
	path := m.Route(src, dst)
	hops := len(path) - 1
	cycle := at
	for i := 0; i < hops; i++ {
		l := link{path[i], path[i+1]}
		if m.busyUntil[l] > cycle {
			cycle = m.busyUntil[l]
		}
		// Head flit traverses in HopCycles; the link stays busy until the
		// tail flit has passed.
		cycle += int64(m.Cfg.HopCycles)
		m.busyUntil[l] = cycle + int64(flits-1)
	}
	arrival := cycle + int64(flits-1)
	if hops == 0 {
		arrival = at // local delivery
	}
	energy := float64(bits*hops) * m.Cfg.EnergyPerBitPJ
	m.packets++
	m.flits += int64(flits)
	m.hopFlits += int64(flits * hops)
	m.energyPJ += energy
	if arrival > m.lastCycle {
		m.lastCycle = arrival
	}
	return Result{
		ArrivalCycle:  arrival,
		LatencyCycles: arrival - at,
		Hops:          hops,
		Flits:         flits,
		EnergyPJ:      energy,
	}
}

// Stats summarizes traffic since construction or the last ResetStats.
type Stats struct {
	Packets  int64
	Flits    int64
	HopFlits int64
	EnergyPJ float64
	// MakespanCycles is the latest arrival seen.
	MakespanCycles int64
}

// Stats returns a snapshot of the accumulated counters.
func (m *Mesh) Stats() Stats {
	return Stats{
		Packets:        m.packets,
		Flits:          m.flits,
		HopFlits:       m.hopFlits,
		EnergyPJ:       m.energyPJ,
		MakespanCycles: m.lastCycle,
	}
}

// ResetStats clears counters and link occupancy.
func (m *Mesh) ResetStats() {
	m.busyUntil = make(map[link]int64)
	m.packets, m.flits, m.hopFlits, m.energyPJ, m.lastCycle = 0, 0, 0, 0, 0
}

// CyclesToNS converts cycles to nanoseconds at the mesh clock.
func (m *Mesh) CyclesToNS(c int64) float64 {
	return float64(c) / m.Cfg.ClockHz * 1e9
}

// MeanHops returns the average hop count of uniformly random traffic in
// an W×H mesh, the standard (W+H)/3 approximation, used by the analytic
// energy model for layer-to-layer traffic.
func MeanHops(w, h int) float64 {
	return (float64(w) + float64(h)) / 3
}

// TransferEnergyPJ estimates the energy of moving `bits` bits over the
// average mesh distance — the analytic counterpart of Send used when
// exact placement is not simulated.
func (m *Mesh) TransferEnergyPJ(bits float64) float64 {
	return bits * MeanHops(m.Cfg.Width, m.Cfg.Height) * m.Cfg.EnergyPerBitPJ
}

// Bisection returns the bisection bandwidth in bits per second.
func (m *Mesh) Bisection() float64 {
	cut := math.Min(float64(m.Cfg.Width), float64(m.Cfg.Height))
	return cut * float64(m.Cfg.LinkBits) * m.Cfg.ClockHz
}
