package modelio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/train"
)

func TestRoundTripPreservesOutputs(t *testing.T) {
	r := rng.New(3)
	tr, te := dataset.TrainTest(dataset.MNISTLike, 200, 60, 5)
	net := models.NewLeNet5(1, 16, 10, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 3
	train.Run(net, tr, te, cfg)

	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != net.Name() {
		t.Fatalf("name %q", loaded.Name())
	}
	x, _ := te.Batch(0, 8)
	want := net.Forward(x.Clone(), false)
	got := loaded.Forward(x, false)
	for i := range want.Data() {
		if want.Data()[i] != got.Data()[i] {
			t.Fatalf("output diverged at %d: %v vs %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestRoundTripBatchNormStats(t *testing.T) {
	r := rng.New(7)
	net := models.NewVGG13(3, 16, 10, r)
	// Push data through so the BN running stats are non-trivial.
	x := tensor.New(4, 3, 16, 16)
	for i := range x.Data() {
		x.Data()[i] = r.Float64()
	}
	net.Forward(x, true)

	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := net.Forward(x.Clone(), false)
	got := loaded.Forward(x.Clone(), false)
	for i := range want.Data() {
		if want.Data()[i] != got.Data()[i] {
			t.Fatal("BN stats not preserved")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a model")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	net := models.NewMLP3(1, 16, 10, rng.New(1))
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stream body.
	b := buf.Bytes()
	for i := range b[20:40] {
		b[20+i] ^= 0xff
	}
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted stream accepted")
	}
}

func TestAllZooModelsRoundTrip(t *testing.T) {
	r := rng.New(11)
	for name, build := range models.Zoo {
		net := build(3, 16, 10, r.Split())
		var buf bytes.Buffer
		if err := Save(&buf, net); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if loaded.ParamCount() != net.ParamCount() {
			t.Fatalf("%s: param count %d vs %d", name, loaded.ParamCount(), net.ParamCount())
		}
	}
}
