// Package modelio serializes trained networks so that training, conversion
// and hardware evaluation can run in separate processes — the missing
// piece for using this repository as a deployment library rather than a
// single-process experiment.
//
// The format is a self-describing gob stream: an architecture description
// (layer kinds and hyperparameters) followed by every parameter tensor and
// the BatchNorm running statistics. Load rebuilds the network from the
// description and restores the weights, so files remain valid across
// refactors of the layer internals.
package modelio

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/nn"
	"repro/internal/rng"
)

// layerSpec is the serialized architecture of one layer.
type layerSpec struct {
	Kind string // conv, linear, relu, avgpool, maxpool, batchnorm, flatten
	Name string
	// Conv/Linear geometry.
	InC, OutC, KH, KW, Stride, Pad, Groups int
	In, Out                                int
	// Pool geometry.
	K, PoolStride int
	// ReLU ceiling.
	Clip float64
	// BatchNorm channels.
	C int
}

// fileFormat is the on-wire structure.
type fileFormat struct {
	Magic   string
	Version int
	NetName string
	Layers  []layerSpec
	// Tensors holds every parameter in network order, then per-BN
	// running mean/var pairs in layer order.
	Tensors [][]float64
	Shapes  [][]int
}

const (
	magic   = "nebula-model"
	version = 1
)

// Save writes a network to w.
func Save(w io.Writer, net *nn.Network) error {
	ff := fileFormat{Magic: magic, Version: version, NetName: net.Name()}
	for _, l := range net.Layers() {
		spec, err := specOf(l)
		if err != nil {
			return err
		}
		ff.Layers = append(ff.Layers, spec)
	}
	for _, p := range net.Params() {
		ff.Tensors = append(ff.Tensors, append([]float64(nil), p.Value.Data()...))
		ff.Shapes = append(ff.Shapes, append([]int(nil), p.Value.Shape()...))
	}
	for _, l := range net.Layers() {
		if bn, ok := l.(*nn.BatchNorm2D); ok {
			ff.Tensors = append(ff.Tensors, append([]float64(nil), bn.RunningMean.Data()...))
			ff.Shapes = append(ff.Shapes, []int{bn.C})
			ff.Tensors = append(ff.Tensors, append([]float64(nil), bn.RunningVar.Data()...))
			ff.Shapes = append(ff.Shapes, []int{bn.C})
		}
	}
	return gob.NewEncoder(w).Encode(ff)
}

func specOf(l nn.Layer) (layerSpec, error) {
	switch v := l.(type) {
	case *nn.Conv2D:
		return layerSpec{Kind: "conv", Name: v.Name(), InC: v.InC, OutC: v.OutC,
			KH: v.KH, KW: v.KW, Stride: v.Stride, Pad: v.Pad, Groups: v.Groups}, nil
	case *nn.Linear:
		return layerSpec{Kind: "linear", Name: v.Name(), In: v.In, Out: v.Out}, nil
	case *nn.ReLU:
		return layerSpec{Kind: "relu", Name: v.Name(), Clip: v.Clip}, nil
	case *nn.AvgPool2D:
		return layerSpec{Kind: "avgpool", Name: v.Name(), K: v.K, PoolStride: v.Stride}, nil
	case *nn.MaxPool2D:
		return layerSpec{Kind: "maxpool", Name: v.Name(), K: v.K, PoolStride: v.Stride}, nil
	case *nn.BatchNorm2D:
		return layerSpec{Kind: "batchnorm", Name: v.Name(), C: v.C}, nil
	case *nn.Flatten:
		return layerSpec{Kind: "flatten", Name: v.Name()}, nil
	}
	return layerSpec{}, fmt.Errorf("modelio: unsupported layer type %T", l)
}

// Load reads a network from r.
func Load(r io.Reader) (*nn.Network, error) {
	var ff fileFormat
	if err := gob.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("modelio: decode: %w", err)
	}
	if ff.Magic != magic {
		return nil, fmt.Errorf("modelio: not a nebula model file")
	}
	if ff.Version != version {
		return nil, fmt.Errorf("modelio: unsupported version %d", ff.Version)
	}
	net := nn.NewNetwork(ff.NetName)
	seed := rng.New(0) // initial weights are immediately overwritten
	for _, spec := range ff.Layers {
		l, err := buildLayer(spec, seed)
		if err != nil {
			return nil, err
		}
		net.Add(l)
	}
	idx := 0
	take := func(want []int) ([]float64, error) {
		if idx >= len(ff.Tensors) {
			return nil, fmt.Errorf("modelio: truncated tensor stream")
		}
		data := ff.Tensors[idx]
		shape := ff.Shapes[idx]
		idx++
		n := 1
		for _, d := range shape {
			n *= d
		}
		if n != len(data) {
			return nil, fmt.Errorf("modelio: tensor %d shape/data mismatch", idx-1)
		}
		return data, nil
	}
	for _, p := range net.Params() {
		data, err := take(p.Value.Shape())
		if err != nil {
			return nil, err
		}
		if len(data) != p.Value.Size() {
			return nil, fmt.Errorf("modelio: parameter %s size mismatch (%d vs %d)", p.Name, len(data), p.Value.Size())
		}
		copy(p.Value.Data(), data)
	}
	for _, l := range net.Layers() {
		if bn, ok := l.(*nn.BatchNorm2D); ok {
			mean, err := take([]int{bn.C})
			if err != nil {
				return nil, err
			}
			variance, err := take([]int{bn.C})
			if err != nil {
				return nil, err
			}
			copy(bn.RunningMean.Data(), mean)
			copy(bn.RunningVar.Data(), variance)
		}
	}
	if idx != len(ff.Tensors) {
		return nil, fmt.Errorf("modelio: %d trailing tensors", len(ff.Tensors)-idx)
	}
	return net, nil
}

func buildLayer(s layerSpec, seed *rng.Rand) (nn.Layer, error) {
	switch s.Kind {
	case "conv":
		return nn.NewConv2D(s.Name, s.InC, s.OutC, s.KH, s.KW, s.Stride, s.Pad, s.Groups, seed), nil
	case "linear":
		return nn.NewLinear(s.Name, s.In, s.Out, seed), nil
	case "relu":
		return nn.NewClippedReLU(s.Name, s.Clip), nil
	case "avgpool":
		return nn.NewAvgPool2D(s.Name, s.K, s.PoolStride), nil
	case "maxpool":
		return nn.NewMaxPool2D(s.Name, s.K, s.PoolStride), nil
	case "batchnorm":
		return nn.NewBatchNorm2D(s.Name, s.C), nil
	case "flatten":
		return nn.NewFlatten(s.Name), nil
	}
	return nil, fmt.Errorf("modelio: unknown layer kind %q", s.Kind)
}
