package compiler

import (
	"testing"
	"testing/quick"

	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/placement"
)

// TestSynapseCoverageProperty: over random single-layer workloads, the
// compiled programs cover every weight exactly once.
func TestSynapseCoverageProperty(t *testing.T) {
	f := func(inCRaw, outCRaw, kRaw, sizeRaw uint8) bool {
		k := []int{1, 3, 5}[kRaw%3]
		inC := int(inCRaw)%256 + 1
		outC := int(outCRaw)%512 + 1
		size := int(sizeRaw)%24 + k
		l := models.LayerShape{
			Name: "l", Kind: models.Conv, InC: inC, OutC: outC,
			K: k, Stride: 1, Pad: k / 2, InH: size, InW: size,
		}
		w := models.Workload{Name: "fuzz", Layers: []models.LayerShape{l}}
		np := mapping.MapWorkload(w)
		// Use a mesh large enough for any fuzzed layer.
		a, err := placement.Place(np, 64, 64)
		if err != nil {
			return true // over-capacity is a placement concern, not compile
		}
		s, err := Compile(a)
		if err != nil {
			return false
		}
		return s.TotalSynapses == int64(l.Rf())*int64(l.Kernels())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestProgramsRespectCoreCapacityProperty: no compiled program exceeds a
// super-tile's crossbar budget.
func TestProgramsRespectCoreCapacityProperty(t *testing.T) {
	f := func(inCRaw, outCRaw, sizeRaw uint8) bool {
		inC := int(inCRaw)%256 + 1
		outC := int(outCRaw)%512 + 1
		size := int(sizeRaw)%24 + 3
		l := models.LayerShape{
			Name: "l", Kind: models.Conv, InC: inC, OutC: outC,
			K: 3, Stride: 1, Pad: 1, InH: size, InW: size,
		}
		w := models.Workload{Name: "fuzz", Layers: []models.LayerShape{l}}
		a, err := placement.Place(mapping.MapWorkload(w), 64, 64)
		if err != nil {
			return true
		}
		s, err := Compile(a)
		if err != nil {
			return false
		}
		for _, p := range s.Programs {
			rows := p.RowHi - p.RowLo
			stacks := (rows + mapping.M - 1) / mapping.M
			sets := (p.Kernels + mapping.M - 1) / mapping.M
			if stacks*sets > mapping.ACsPerNC {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
