package compiler

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/placement"
)

func compiled(t *testing.T, w models.Workload, meshW, meshH int) *Schedule {
	t.Helper()
	np := mapping.MapWorkload(w)
	a, err := placement.Place(np, meshW, meshH)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompileVGGCoreCount(t *testing.T) {
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	np := mapping.MapWorkload(w)
	s := compiled(t, w, 14, 14)
	// Every allocated core must get exactly one program.
	if len(s.Programs) != np.TotalNCs() {
		t.Fatalf("programs %d, want %d cores", len(s.Programs), np.TotalNCs())
	}
}

func TestCompileSynapseCoverage(t *testing.T) {
	// The union of per-core kernel slices must cover every weight exactly
	// once: Σ synapses == Σ Rf·K over weighted layers.
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	s := compiled(t, w, 14, 14)
	var want int64
	for _, l := range w.WeightedLayers() {
		want += int64(l.Rf()) * int64(l.Kernels())
	}
	if s.TotalSynapses != want {
		t.Fatalf("synapses %d, want %d", s.TotalSynapses, want)
	}
}

func TestCompileRowRangesDisjointAndOrdered(t *testing.T) {
	w := models.FullAlexNet()
	s := compiled(t, w, 24, 24)
	byLayerCol := map[string][]CoreProgram{}
	for _, p := range s.Programs {
		key := p.Layer
		byLayerCol[key] = append(byLayerCol[key], p)
	}
	for layer, progs := range byLayerCol {
		for _, p := range progs {
			if p.RowLo < 0 || p.RowHi <= p.RowLo {
				t.Fatalf("%s: bad row range [%d,%d)", layer, p.RowLo, p.RowHi)
			}
			if p.Kernels <= 0 || p.Kernels > mapping.M {
				t.Fatalf("%s: kernels %d", layer, p.Kernels)
			}
			if p.Switches.Stack < 1 || p.Switches.Stack > mapping.ACsPerNC {
				t.Fatalf("%s: stack %d", layer, p.Switches.Stack)
			}
		}
	}
}

func TestCompileSpillCoresMarked(t *testing.T) {
	w := models.FullAlexNet()
	s := compiled(t, w, 24, 24)
	spill, local := 0, 0
	for _, p := range s.Programs {
		if p.EmitsPartialSums {
			spill++
			if p.Switches.Level != mapping.LevelADC {
				t.Fatalf("spill core at NU level %v", p.Switches.Level)
			}
		} else {
			local++
			if p.Switches.Level == mapping.LevelADC {
				t.Fatal("local core marked ADC")
			}
		}
	}
	if spill == 0 || local == 0 {
		t.Fatalf("AlexNet should mix spill (%d) and local (%d) cores", spill, local)
	}
}

func TestProgrammingCost(t *testing.T) {
	w := models.FullLeNet5()
	s := compiled(t, w, 14, 14)
	c := s.ProgrammingCost(device.DefaultParams())
	if c.Writes != s.TotalSynapses {
		t.Fatalf("writes %d, want %d", c.Writes, s.TotalSynapses)
	}
	if c.EnergyJ <= 0 || c.TimeS <= 0 {
		t.Fatalf("degenerate cost %+v", c)
	}
	// LeNet has ~61k weights → ~3 µJ at 50 fJ/write; sanity bounds.
	if c.EnergyJ > 1e-4 || c.EnergyJ < 1e-9 {
		t.Fatalf("programming energy %v J implausible", c.EnergyJ)
	}
}

func TestPipelineStagesAndLatency(t *testing.T) {
	small := compiled(t, models.FullMLP3(), 14, 14)
	big := compiled(t, models.FullVGG13(10, 300, 91.6, 90.05), 14, 14)
	if small.PipelineStages >= big.PipelineStages {
		t.Fatal("VGG must have a deeper pipeline than the MLP")
	}
	if small.PassLatencyNS <= 0 || big.PassLatencyNS <= small.PassLatencyNS {
		t.Fatalf("latencies: mlp %v, vgg %v", small.PassLatencyNS, big.PassLatencyNS)
	}
}

func TestRenderAndSummary(t *testing.T) {
	s := compiled(t, models.FullLeNet5(), 14, 14)
	var b bytes.Buffer
	s.Render(&b)
	out := b.String()
	for _, want := range []string{"compiled schedule", "conv1", "fc1", "stack="} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
	if !strings.Contains(s.Summary(), "lenet5") {
		t.Fatalf("summary: %s", s.Summary())
	}
}
