// Package compiler produces the compile-time artifacts §IV-B5 alludes to:
// "All synaptic weights are pre-programmed and control configurations are
// pre-computed and loaded at compile time using state machines."
//
// Given a mapped and placed workload, Compile emits one CoreProgram per
// neural core — the morphable-switch settings, NU hierarchy level, the
// kernel-matrix slice the core holds, its evaluation schedule and its
// weight-programming cost — plus chip-level aggregates: total programming
// energy/time (the one-off deployment cost of the inference-only design)
// and the steady-state pipeline latency of Fig. 8.
package compiler

import (
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/mapping"
	"repro/internal/placement"
)

// SwitchConfig is a morphable tile's static configuration for one layer.
type SwitchConfig struct {
	// Stack is the number of vertically ganged atomic crossbars.
	Stack int
	// Sets is the number of independent kernel column groups on the core.
	Sets int
	// Level is the NU hierarchy level thresholding the column currents.
	Level mapping.NULevel
}

// String implements fmt.Stringer.
func (c SwitchConfig) String() string {
	return fmt.Sprintf("stack=%d sets=%d nu=%s", c.Stack, c.Sets, c.Level)
}

// CoreProgram is the configuration state machine of one neural core.
type CoreProgram struct {
	// Layer names the mapped layer.
	Layer string
	// CoreIndex is the core's ordinal within the layer's allocation.
	CoreIndex int
	// Node is the core's mesh coordinate (from the placement).
	Node fmt.Stringer
	// Switches is the static tile configuration.
	Switches SwitchConfig
	// RowLo/RowHi is the slice of kernel rows this core holds
	// (multi-core layers split the receptive field across cores).
	RowLo, RowHi int
	// Kernels is the number of kernel columns the core serves.
	Kernels int
	// Synapses is the number of device pairs the core programs.
	Synapses int64
	// EvalsPerPass is the core's crossbar evaluations per inference pass.
	EvalsPerPass int
	// EmitsPartialSums marks the ADC spill path.
	EmitsPartialSums bool
}

// Schedule is the compiled chip configuration for one workload.
type Schedule struct {
	Workload string
	Programs []CoreProgram
	// PipelineStages is the steady-state depth of the Fig. 8 pipeline
	// over the whole network (3 per in-core layer, plus reduction stages
	// on spill layers).
	PipelineStages int
	// PassLatencyNS is the dataflow latency of one full inference pass.
	PassLatencyNS float64
	// TotalSynapses counts programmed device pairs.
	TotalSynapses int64
}

// Compile lowers a placed workload into per-core programs.
func Compile(a *placement.Assignment) (*Schedule, error) {
	s := &Schedule{Workload: a.Workload.Name}
	for _, la := range a.Layers {
		p := la.Placement
		if p.ACsUsed == 0 {
			continue // pooling rides the NU datapath; no core state
		}
		rf := p.Layer.Rf()
		kernels := p.Layer.Kernels()
		if p.NeedsADC() {
			// Spill layers: one core per (set, spill) pair, each holding
			// a 16M-row slice of one 128-kernel column group.
			rowsPerCore := mapping.MaxRowsPerNC
			idx := 0
			for set := 0; set < p.Sets; set++ {
				colLo := set * mapping.M
				colHi := minInt(colLo+mapping.M, kernels)
				for spill := 0; spill < p.NCSpill; spill++ {
					rowLo := spill * rowsPerCore
					rowHi := minInt(rowLo+rowsPerCore, rf)
					if rowLo >= rf || idx >= len(la.Nodes) {
						break
					}
					stack := (rowHi - rowLo + mapping.M - 1) / mapping.M
					prog := CoreProgram{
						Layer:     p.Layer.Name,
						CoreIndex: idx,
						Node:      la.Nodes[idx],
						Switches: SwitchConfig{
							Stack: stack,
							Sets:  1,
							Level: mapping.LevelADC,
						},
						RowLo: rowLo, RowHi: rowHi,
						Kernels:          colHi - colLo,
						Synapses:         int64(rowHi-rowLo) * int64(colHi-colLo),
						EvalsPerPass:     p.Evaluations,
						EmitsPartialSums: true,
					}
					s.Programs = append(s.Programs, prog)
					s.TotalSynapses += prog.Synapses
					idx++
				}
			}
		} else {
			// In-core layers: the full receptive field fits every core;
			// column sets are distributed round-robin across the
			// allocation, so one core may serve several sets.
			cores := len(la.Nodes)
			setsPerCore := (p.Sets + cores - 1) / cores
			setIdx := 0
			for idx := 0; idx < cores; idx++ {
				nSets := minInt(setsPerCore, p.Sets-setIdx)
				if nSets <= 0 {
					break
				}
				colLo := setIdx * mapping.M
				colHi := minInt(colLo+nSets*mapping.M, kernels)
				prog := CoreProgram{
					Layer:     p.Layer.Name,
					CoreIndex: idx,
					Node:      la.Nodes[idx],
					Switches: SwitchConfig{
						Stack: p.StackHeight,
						Sets:  nSets,
						Level: levelForStack(p.StackHeight, p),
					},
					RowLo: 0, RowHi: rf,
					Kernels:          colHi - colLo,
					Synapses:         int64(rf) * int64(colHi-colLo),
					EvalsPerPass:     p.Evaluations,
					EmitsPartialSums: false,
				}
				s.Programs = append(s.Programs, prog)
				s.TotalSynapses += prog.Synapses
				setIdx += nSets
			}
		}
		s.PipelineStages += 3
		if p.NeedsADC() {
			s.PipelineStages += 2 + log2Ceil(p.NCSpill)
		}
		s.PassLatencyNS += p.LatencyNS()
	}
	return s, nil
}

// levelForStack returns the per-core NU level: a spilled core thresholds
// nothing locally (its sums leave through the ADC), otherwise the level
// follows its local stack height.
func levelForStack(stack int, p mapping.Placement) mapping.NULevel {
	if p.NeedsADC() {
		return mapping.LevelADC
	}
	switch {
	case stack <= 1:
		return mapping.LevelH0
	case stack <= mapping.ACsPerTile:
		return mapping.LevelH1
	default:
		return mapping.LevelH2
	}
}

// ProgrammingCost is the one-off weight-loading cost of deployment.
type ProgrammingCost struct {
	// EnergyJ is the total synapse programming energy.
	EnergyJ float64
	// TimeS is the serial programming time at one device per write port
	// per core (pessimistic: one write driver per core).
	TimeS float64
	// Writes counts device programming events (two devices per synapse
	// pair, one of which moves on average).
	Writes int64
}

// ProgrammingCost estimates the deployment cost from the device model: an
// average write moves the wall half its length.
func (s *Schedule) ProgrammingCost(p device.Params) ProgrammingCost {
	writes := s.TotalSynapses // one device of each differential pair moves
	perWriteJ := p.WriteEnergyFJ * 1e-15 * 0.5
	perWriteS := p.PulseNS * 1e-9
	cores := len(s.Programs)
	if cores == 0 {
		cores = 1
	}
	return ProgrammingCost{
		EnergyJ: float64(writes) * perWriteJ,
		TimeS:   float64(writes) / float64(cores) * perWriteS,
		Writes:  writes,
	}
}

// Render writes a human-readable listing of the compiled schedule.
func (s *Schedule) Render(w io.Writer) {
	fmt.Fprintf(w, "compiled schedule for %s: %d core programs, %d pipeline stages, pass latency %.1f µs\n",
		s.Workload, len(s.Programs), s.PipelineStages, s.PassLatencyNS/1e3)
	cur := ""
	for _, p := range s.Programs {
		if p.Layer != cur {
			cur = p.Layer
			fmt.Fprintf(w, "  %s\n", cur)
		}
		spill := ""
		if p.EmitsPartialSums {
			spill = " → ADC/RU"
		}
		fmt.Fprintf(w, "    core %2d @%v  rows [%4d,%4d)  %3d kernels  %s  %d evals%s\n",
			p.CoreIndex, p.Node, p.RowLo, p.RowHi, p.Kernels, p.Switches, p.EvalsPerPass, spill)
	}
}

// Summary returns a one-line digest.
func (s *Schedule) Summary() string {
	return fmt.Sprintf("%s: %d cores, %d synapse pairs, %.1f µs/pass",
		s.Workload, len(s.Programs), s.TotalSynapses, s.PassLatencyNS/1e3)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func log2Ceil(n int) int {
	c := 0
	for v := 1; v < n; v <<= 1 {
		c++
	}
	return c
}
