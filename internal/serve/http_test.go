package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

func testHandler(t *testing.T, cfg Config, hc HandlerConfig) (*Server, http.Handler) {
	t.Helper()
	s, _ := newTestServer(t, cfg, 2, 10)
	return s, s.Handler(hc)
}

func postJSON(t *testing.T, h http.Handler, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHTTPInfer(t *testing.T) {
	_, h := testHandler(t, Config{BatchSize: 2, QueueDepth: 8}, HandlerConfig{})
	imgs := serveImages(t, 1)
	want := goldenRuns(t, imgs, 10)
	w := postJSON(t, h, "/v1/infer", InferRequest{Input: imgs[0].Data()})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var resp InferResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Prediction != want[0].Prediction {
		t.Fatalf("prediction %d, want %d", resp.Prediction, want[0].Prediction)
	}
	if len(resp.Output) != len(want[0].Output.Data()) {
		t.Fatalf("output size %d, want %d", len(resp.Output), len(want[0].Output.Data()))
	}
	if resp.BatchFill < 1 {
		t.Fatalf("batch fill %d, want >= 1", resp.BatchFill)
	}
}

func TestHTTPInferBadRequest(t *testing.T) {
	_, h := testHandler(t, Config{}, HandlerConfig{})
	for name, body := range map[string]InferRequest{
		"empty":     {},
		"bad-shape": {Input: []float64{1, 2, 3}, Shape: []int{2, 2}},
		"zero-dim":  {Input: []float64{1}, Shape: []int{0}},
	} {
		w := postJSON(t, h, "/v1/infer", body)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (body %s)", name, w.Code, w.Body.String())
		}
		var e ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		if e.Kind != "bad_request" {
			t.Fatalf("%s: kind %q, want bad_request", name, e.Kind)
		}
	}
	// Method mapping.
	req := httptest.NewRequest(http.MethodGet, "/v1/infer", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET infer: status %d, want 405", w.Code)
	}
}

func TestHTTPStream(t *testing.T) {
	_, h := testHandler(t, Config{BatchSize: 4, MaxDelay: 10 * time.Millisecond, QueueDepth: 16}, HandlerConfig{})
	imgs := serveImages(t, 3)
	want := goldenRuns(t, imgs, 10)
	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	for _, img := range imgs {
		if err := enc.Encode(InferRequest{Input: img.Data()}); err != nil {
			t.Fatal(err)
		}
	}
	// A malformed line mid-stream must not break the stream's order.
	req := httptest.NewRequest(http.MethodPost, "/v1/infer/stream", &in)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != len(imgs) {
		t.Fatalf("%d response lines, want %d: %q", len(lines), len(imgs), lines)
	}
	for i, line := range lines {
		var resp InferResponse
		if err := json.Unmarshal([]byte(line), &resp); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if resp.Prediction != want[i].Prediction {
			t.Fatalf("line %d: prediction %d, want %d (stream order broken)", i, resp.Prediction, want[i].Prediction)
		}
	}
}

func TestHTTPHealthzAndDrain(t *testing.T) {
	s, h := testHandler(t, Config{}, HandlerConfig{})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthy server: status %d, want 200 (body %s)", w.Code, w.Body.String())
	}
	var hr HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Pool.Healthy != 2 {
		t.Fatalf("health %+v, want ok with 2 healthy", hr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining server: status %d, want 503", w.Code)
	}
	// Admission during drain maps to 503 with the typed kind.
	imgs := serveImages(t, 1)
	iw := postJSON(t, h, "/v1/infer", InferRequest{Input: imgs[0].Data()})
	if iw.Code != http.StatusServiceUnavailable {
		t.Fatalf("drain infer: status %d, want 503", iw.Code)
	}
	var e ErrorResponse
	if err := json.Unmarshal(iw.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "draining" {
		t.Fatalf("drain infer kind %q, want draining", e.Kind)
	}
}

func TestHTTPMetrics(t *testing.T) {
	rec := obs.NewServeRecorder()
	s, h := testHandler(t, Config{Rec: rec}, HandlerConfig{FleetRec: nil})
	imgs := serveImages(t, 1)
	if _, err := s.Infer(context.Background(), imgs[0]); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	body := w.Body.String()
	for _, series := range []string{
		"nebula_serve_requests_admitted_total 1",
		"nebula_serve_requests_served_total 1",
		"nebula_serve_batches_total 1",
		"nebula_serve_batch_fill_bucket",
		"nebula_serve_queue_depth 0",
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("metrics missing %q:\n%s", series, body)
		}
	}
}

func TestErrorStatusMapping(t *testing.T) {
	for _, tc := range []struct {
		err    error
		status int
		kind   string
	}{
		{ErrQueueFull, http.StatusTooManyRequests, "queue_full"},
		{ErrDraining, http.StatusServiceUnavailable, "draining"},
		{&DeadlineError{Stage: StageQueued, Err: context.DeadlineExceeded}, http.StatusGatewayTimeout, "deadline_queued"},
		{&DeadlineError{Stage: StageRunning, Err: context.Canceled}, http.StatusGatewayTimeout, "deadline_running"},
		{fleet.ErrExhausted, http.StatusServiceUnavailable, "exhausted"},
	} {
		status, kind := errorStatus(tc.err)
		if status != tc.status || kind != tc.kind {
			t.Fatalf("errorStatus(%v) = (%d, %q), want (%d, %q)", tc.err, status, kind, tc.status, tc.kind)
		}
	}
}
