package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/train"
)

// serveSeed seeds both the pool and the standalone golden session, the
// precondition for comparing their outputs bit for bit.
const serveSeed = 42

// Shared trained fixture, compiled once per test binary.
var (
	fixOnce sync.Once
	fixConv *convert.Converted
	fixTest *dataset.Dataset
)

func serveFixture(t *testing.T) (*convert.Converted, *dataset.Dataset) {
	t.Helper()
	fixOnce.Do(func() {
		tr, te := dataset.TrainTest(dataset.MNISTLike, 200, 40, 77)
		net := models.NewMLP3(1, 16, 10, rng.New(5))
		cfg := train.DefaultConfig()
		cfg.Epochs = 4
		train.Run(net, tr, te, cfg)
		var err error
		fixConv, err = convert.Convert(net, tr, convert.DefaultConfig())
		if err != nil {
			panic(err)
		}
		fixTest = te
	})
	return fixConv, fixTest
}

// serveFactory compiles interchangeable replicas with read noise on, so
// per-request noise streams are load-bearing: any ticket misrouting
// under coalescing shows up as a bitwise mismatch. timesteps scales run
// duration — slow runs (large T) give concurrency tests a wide window.
func serveFactory(c *convert.Converted, timesteps int) fleet.Factory {
	return func(ctx context.Context) (*arch.Session, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chip := arch.NewChip(device.DefaultParams(), crossbar.Config{ReadNoiseSigma: 0.05}, rng.New(91))
		chip.Rel = &reliability.Config{
			Protection: reliability.ProtectSpareRemap,
			Policy:     reliability.DefaultPolicy(),
		}
		return chip.Compile(c,
			arch.WithMode(arch.ModeSNN),
			arch.WithTimesteps(timesteps),
			arch.WithSeed(serveSeed))
	}
}

func serveImages(t *testing.T, n int) []*tensor.Tensor {
	t.Helper()
	_, te := serveFixture(t)
	imgs := make([]*tensor.Tensor, n)
	for i := range imgs {
		imgs[i], _ = te.Sample(i % te.Len())
	}
	return imgs
}

// goldenRuns produces reference outputs from a standalone session
// seeded like the pool, run sequentially.
func goldenRuns(t *testing.T, imgs []*tensor.Tensor, timesteps int) []*arch.RunResult {
	t.Helper()
	c, _ := serveFixture(t)
	sess, err := serveFactory(c, timesteps)(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*arch.RunResult, len(imgs))
	for i, img := range imgs {
		out[i], err = sess.Run(context.Background(), img)
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func newTestServer(t *testing.T, cfg Config, replicas, timesteps int) (*Server, *fleet.Pool) {
	t.Helper()
	c, _ := serveFixture(t)
	pool, err := fleet.NewPool(context.Background(), fleet.Config{
		Replicas: replicas,
		Factory:  serveFactory(c, timesteps),
		Seed:     serveSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pool = pool
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(drainCtx)
	})
	return s, pool
}

func assertSameBits(t *testing.T, label string, i int, want, got *arch.RunResult) {
	t.Helper()
	wd, gd := want.Output.Data(), got.Output.Data()
	if len(wd) != len(gd) {
		t.Fatalf("%s: input %d: output size %d, want %d", label, i, len(gd), len(wd))
	}
	for j := range wd {
		if math.Float64bits(wd[j]) != math.Float64bits(gd[j]) {
			t.Fatalf("%s: input %d col %d: %v != %v (served result not bitwise identical)",
				label, i, j, gd[j], wd[j])
		}
	}
}

// TestServeDeterministicAcrossBatchShapes is the keystone: the same
// request sequence must produce byte-identical outputs whether each
// request is served solo (BatchSize 1) or coalesced into any batch
// shape, because tickets are reserved in admission order.
func TestServeDeterministicAcrossBatchShapes(t *testing.T) {
	imgs := serveImages(t, 8)
	want := goldenRuns(t, imgs, 10)
	for _, shape := range []struct {
		name  string
		batch int
		delay time.Duration
	}{
		{"solo", 1, 0},
		{"greedy4", 4, 0},
		{"timed8", 8, 20 * time.Millisecond},
	} {
		t.Run(shape.name, func(t *testing.T) {
			s, _ := newTestServer(t, Config{BatchSize: shape.batch, MaxDelay: shape.delay, QueueDepth: 32}, 2, 10)
			// Submit everything first (deterministic admission order),
			// then collect: later requests can coalesce with earlier ones.
			pending := make([]*Pending, len(imgs))
			for i, img := range imgs {
				p, err := s.Submit(context.Background(), img)
				if err != nil {
					t.Fatal(err)
				}
				pending[i] = p
			}
			for i, p := range pending {
				got, err := p.Wait()
				if err != nil {
					t.Fatal(err)
				}
				assertSameBits(t, shape.name, i, want[i], got)
			}
		})
	}
}

// TestServeCoalescing checks the watermark path actually forms
// multi-request batches when requests are queued together.
func TestServeCoalescing(t *testing.T) {
	rec := obs.NewServeRecorder()
	s, _ := newTestServer(t, Config{BatchSize: 4, MaxDelay: 50 * time.Millisecond, QueueDepth: 32, Rec: rec}, 2, 10)
	imgs := serveImages(t, 8)
	pending := make([]*Pending, len(imgs))
	for i, img := range imgs {
		p, err := s.Submit(context.Background(), img)
		if err != nil {
			t.Fatal(err)
		}
		pending[i] = p
	}
	for _, p := range pending {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := rec.Stats()
	if st.Served != int64(len(imgs)) {
		t.Fatalf("served %d, want %d", st.Served, len(imgs))
	}
	if st.Batches >= int64(len(imgs)) {
		t.Fatalf("%d batches for %d requests: no coalescing happened", st.Batches, len(imgs))
	}
	if st.BatchFill.Count != st.Batches {
		t.Fatalf("batch-fill histogram count %d != batches %d", st.BatchFill.Count, st.Batches)
	}
	if st.BatchFill.Sum != int64(len(imgs)) {
		t.Fatalf("batch-fill sum %v, want %d (every request in exactly one batch)", st.BatchFill.Sum, len(imgs))
	}
}

// TestServeBackpressure checks bounded admission: with a tiny queue and
// slow runs, a burst must hit typed ErrQueueFull, and the queue-full
// counter must line up.
func TestServeBackpressure(t *testing.T) {
	rec := obs.NewServeRecorder()
	// Slow runs (high timesteps) + batch 1 + queue 2: the dispatcher is
	// busy with the first request while the burst lands.
	s, _ := newTestServer(t, Config{BatchSize: 1, QueueDepth: 2, Rec: rec}, 1, 2000)
	imgs := serveImages(t, 8)
	var pending []*Pending
	var full int
	for _, img := range imgs {
		p, err := s.Submit(context.Background(), img)
		switch {
		case err == nil:
			pending = append(pending, p)
		case errors.Is(err, ErrQueueFull):
			full++
		default:
			t.Fatalf("unexpected admission error: %v", err)
		}
	}
	if full == 0 {
		t.Fatal("burst of 8 into queue of 2 produced no ErrQueueFull")
	}
	for _, p := range pending {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := rec.Stats()
	if st.RejectedQueueFull != int64(full) {
		t.Fatalf("recorder counted %d queue-full rejections, observed %d", st.RejectedQueueFull, full)
	}
	if st.Admitted != int64(len(pending)) {
		t.Fatalf("recorder counted %d admissions, observed %d", st.Admitted, len(pending))
	}
}

// TestServeDrainFlushesQueue checks drain-with-nonempty-queue: every
// request admitted before Drain is served, not dropped, and admissions
// after Drain fail with ErrDraining.
func TestServeDrainFlushesQueue(t *testing.T) {
	rec := obs.NewServeRecorder()
	s, _ := newTestServer(t, Config{BatchSize: 2, QueueDepth: 16, Rec: rec}, 2, 10)
	imgs := serveImages(t, 6)
	want := goldenRuns(t, imgs, 10)
	pending := make([]*Pending, len(imgs))
	for i, img := range imgs {
		p, err := s.Submit(context.Background(), img)
		if err != nil {
			t.Fatal(err)
		}
		pending[i] = p
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	// Post-drain admission must be refused, typed.
	if _, err := s.Submit(context.Background(), imgs[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Submit: %v, want ErrDraining", err)
	}
	// Everything admitted pre-drain was served — with the right bits.
	for i, p := range pending {
		got, err := p.Wait()
		if err != nil {
			t.Fatalf("request %d admitted before drain failed: %v", i, err)
		}
		assertSameBits(t, "drain", i, want[i], got)
	}
	st := rec.Stats()
	if st.Served != int64(len(imgs)) {
		t.Fatalf("served %d, want %d (drain dropped queued requests)", st.Served, len(imgs))
	}
	if st.RejectedDraining != 1 {
		t.Fatalf("draining rejections %d, want 1", st.RejectedDraining)
	}
	if !st.Draining {
		t.Fatal("recorder draining gauge not set")
	}
	// Drain is idempotent.
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestServeDeadlineWhileQueued checks a request whose deadline expires
// while it waits in the queue is culled at dispatch — typed stage
// "queued" — and never reaches the pool.
func TestServeDeadlineWhileQueued(t *testing.T) {
	rec := obs.NewServeRecorder()
	// Batch 1, one replica, slow runs: the second request waits in the
	// queue the whole time the first one runs.
	s, _ := newTestServer(t, Config{BatchSize: 1, QueueDepth: 8, Rec: rec}, 1, 2000)
	imgs := serveImages(t, 2)
	p0, err := s.Submit(context.Background(), imgs[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p1, err := s.Submit(ctx, imgs[1])
	if err != nil {
		t.Fatal(err)
	}
	cancel() // expire while queued: the first request is still running
	if _, err := p0.Wait(); err != nil {
		t.Fatalf("first request: %v", err)
	}
	_, err = p1.Wait()
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("queued-expiry error %v, want *DeadlineError", err)
	}
	if de.Stage != StageQueued {
		t.Fatalf("stage %q, want %q", de.Stage, StageQueued)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	// Wait returns from the dispatcher's answer, so the cull counter is
	// already settled here.
	if got := rec.Stats().ExpiredQueued; got != 1 {
		t.Fatalf("expired-queued counter %d, want 1", got)
	}
}

// TestServeDeadlineMidBatch checks a deadline expiring mid-run cancels
// only that request — typed stage "running" — while its batch-mate
// completes with the right bits.
func TestServeDeadlineMidBatch(t *testing.T) {
	imgs := serveImages(t, 2)
	want := goldenRuns(t, imgs, 3000)
	// Batch 2, two replicas: both requests dispatch in one batch and run
	// concurrently; timesteps 3000 gives a wide cancellation window.
	s, pool := newTestServer(t, Config{BatchSize: 2, QueueDepth: 8}, 2, 3000)
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	p0, err := s.Submit(context.Background(), imgs[0])
	if err != nil {
		t.Fatal(err)
	}
	p1, err := s.Submit(ctx1, imgs[1])
	if err != nil {
		t.Fatal(err)
	}
	// Wait until both batch-mates are actually on sessions, then cancel
	// the second one mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for pool.Stats().InFlight < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := pool.Stats().InFlight; got < 2 {
		t.Fatalf("in-flight %d, want 2 (batch did not dispatch concurrently)", got)
	}
	cancel1()
	_, err = p1.Wait()
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("mid-run cancel error %v, want *DeadlineError", err)
	}
	if de.Stage != StageRunning {
		t.Fatalf("stage %q, want %q", de.Stage, StageRunning)
	}
	// The batch-mate is undisturbed: it completes, bit-exact.
	got, err := p0.Wait()
	if err != nil {
		t.Fatalf("batch-mate failed: %v", err)
	}
	assertSameBits(t, "mid-batch", 0, want[0], got)
}

// TestPoolStats checks the occupancy snapshot the serve layer and
// /healthz consume.
func TestPoolStats(t *testing.T) {
	c, _ := serveFixture(t)
	pool, err := fleet.NewPool(context.Background(), fleet.Config{
		Replicas: 2,
		Factory:  serveFactory(c, 10),
		Seed:     serveSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Replicas != 2 || st.Active != 2 || st.Healthy != 2 {
		t.Fatalf("fresh pool stats %+v, want 2 replicas active and healthy", st)
	}
	if st.Suspect != 0 || st.Retired != 0 || st.InFlight != 0 {
		t.Fatalf("fresh pool stats %+v, want zero suspect/retired/in-flight", st)
	}
}
