// Package serve is the network inference tier: a dynamic-batching
// request queue in front of a health-aware fleet.Pool, plus the HTTP
// surface (infer, streaming infer, health, metrics) cmd/nebula-serve
// exposes. It is the direct path from "simulator" to "service": the
// paper's pitch is throughput-per-watt at the chip level, and batched,
// event-driven evaluation is where that discipline pays at system
// scale — a request that waits a few milliseconds to share a dispatch
// amortizes scheduling and engine overhead across the whole batch.
//
// # Coalescing
//
// Admitted requests enter a bounded FIFO queue. A single dispatcher
// goroutine collects them into batches and flushes on whichever comes
// first: the batch-size watermark (Config.BatchSize) or the coalesce
// deadline (Config.MaxDelay, armed when the first request of a batch
// arrives). Each flushed batch is dispatched concurrently against the
// pool, one routed attempt per request, so a batch fills the pool's
// replicas and the engine's worker parallelism without ever giving one
// request's failure the power to fail its batch-mates.
//
// # Backpressure
//
// Admission is refused — never blocked — when the queue is at capacity
// (ErrQueueFull, HTTP 429) or the server is draining (ErrDraining,
// HTTP 503). The queue bound is the service's one knob between "absorb
// bursts" and "fail fast": everything past it waits in the clients,
// where retry policy belongs.
//
// # Deadlines
//
// Every request carries its caller's context. A deadline that expires
// while the request is still queued culls it at dispatch — it never
// reaches the pool and costs no engine work (*DeadlineError, stage
// "queued"). A deadline that expires mid-run cancels only that
// request's attempt through the engine's existing ctx-cancellation
// points; its batch-mates complete undisturbed (*DeadlineError, stage
// "running").
//
// # Determinism under coalescing
//
// The server reserves a fleet.Ticket per request at admission time,
// under the admission lock, so reservation order equals admission
// order. Because a pool result is a pure function of (input,
// reservation index, pool seed), a request's output is byte-identical
// whether it is served solo, coalesced into any batch shape, retried,
// or failed over — the serving tier adds scheduling, never arithmetic.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// ErrQueueFull reports an admission refused because the coalescing
// queue is at capacity — the HTTP 429 backpressure signal.
var ErrQueueFull = errors.New("serve: queue full")

// ErrDraining reports an admission refused because the server is
// draining — the HTTP 503 shutdown signal.
var ErrDraining = errors.New("serve: draining")

// Stage names where a request was when its deadline expired.
const (
	// StageQueued: the deadline passed while the request waited for a
	// batch; it was culled at dispatch and never reached the pool.
	StageQueued = "queued"
	// StageRunning: the deadline passed mid-run; the request's own
	// attempt was cancelled at the engine's next cancellation point
	// while its batch-mates completed.
	StageRunning = "running"
)

// DeadlineError reports a request whose context expired before a
// result was produced. It wraps the context error, so errors.Is(err,
// context.DeadlineExceeded) keeps working.
type DeadlineError struct {
	// Stage is StageQueued or StageRunning.
	Stage string
	// Err is the underlying context error.
	Err error
}

// Error implements error.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("serve: deadline expired while %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the context error to errors.Is / errors.As.
func (e *DeadlineError) Unwrap() error { return e.Err }

// Config configures a Server.
type Config struct {
	// Pool is the compiled-session fleet that executes requests.
	// Required.
	Pool *fleet.Pool
	// BatchSize is the coalescing watermark: a batch is flushed as soon
	// as it holds this many requests (default 8).
	BatchSize int
	// MaxDelay is the coalesce deadline: a non-full batch is flushed
	// this long after its first request arrived. Zero means "greedy":
	// take whatever is queued right now and dispatch immediately —
	// coalescing still happens under load, but an idle server adds no
	// latency.
	MaxDelay time.Duration
	// QueueDepth bounds the number of admitted-but-undispatched
	// requests; admissions past it fail with ErrQueueFull (default 64).
	QueueDepth int
	// Rec, when non-nil, receives the serving-tier counters.
	Rec *obs.ServeRecorder
	// Now, when non-nil, is a monotonic nanosecond clock used for the
	// coalesce-wait and request-latency histograms. It is injected from
	// cmd/ (internal packages never read the wall clock); nil disables
	// latency measurement without affecting serving behaviour.
	Now func() int64
}

// response is the terminal state of one admitted request.
type response struct {
	res *arch.RunResult
	err error
	// batch is the size of the coalesced batch the request was
	// dispatched in (0 when culled while queued).
	batch int
}

// request is one admitted inference: the caller's context, the input,
// and the RNG ticket reserved at admission.
type request struct {
	ctx   context.Context
	input *tensor.Tensor
	tk    fleet.Ticket
	// enqueuedNS is the admission timestamp (clock units; 0 without a
	// clock).
	enqueuedNS int64
	// out receives exactly one response from the dispatcher. Buffered,
	// so the dispatcher never blocks on an abandoned caller.
	out chan response
}

// Pending is a submitted request whose result has not been collected
// yet. Submit/Wait split admission from completion so a caller can
// submit a stream of requests in a deterministic admission order and
// only then block.
type Pending struct {
	req *request
}

// Wait blocks until the request completes and returns its result. The
// dispatcher answers every admitted request exactly once — culled,
// cancelled, failed or served — so Wait always returns, and the stage
// on a *DeadlineError is authoritative: "queued" means the pool never
// saw the request, "running" means its attempt was cancelled mid-run.
func (p *Pending) Wait() (*arch.RunResult, error) {
	r := <-p.req.out
	return r.res, r.err
}

// Server is the dynamic-batching inference frontend. Construct with
// New, serve with Submit/Infer (or the HTTP handler), stop with Drain.
type Server struct {
	cfg  Config
	pool *fleet.Pool
	rec  *obs.ServeRecorder
	now  func() int64

	// mu is the admission gate: it orders ticket reservation with queue
	// insertion (reservation order == admission order, the determinism
	// contract) and makes the draining flag an honest barrier.
	mu       sync.Mutex
	draining bool
	queue    chan *request

	// done closes when the dispatcher has flushed the queue and every
	// admitted request has been answered.
	done chan struct{}
}

// New starts a server over the pool and its dispatcher goroutine.
func New(cfg Config) (*Server, error) {
	if cfg.Pool == nil {
		return nil, errors.New("serve: config needs a fleet.Pool")
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 8
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	s := &Server{
		cfg:   cfg,
		pool:  cfg.Pool,
		rec:   cfg.Rec,
		now:   cfg.Now,
		queue: make(chan *request, cfg.QueueDepth),
		done:  make(chan struct{}),
	}
	go s.dispatch()
	return s, nil
}

// clock reads the injected clock, or 0 without one.
func (s *Server) clock() int64 {
	if s.now == nil {
		return 0
	}
	return s.now()
}

// Submit admits one request: it reserves the request's RNG ticket and
// enqueues it for coalescing, returning as soon as admission is
// decided. ctx governs the request through queueing and execution —
// its deadline is the request deadline. Rejections are immediate and
// typed: ErrDraining after Drain began, ErrQueueFull at capacity.
func (s *Server) Submit(ctx context.Context, input *tensor.Tensor) (*Pending, error) {
	req := &request{ctx: ctx, input: input, out: make(chan response, 1)}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		if s.rec != nil {
			s.rec.AddRejectedDraining()
		}
		return nil, ErrDraining
	}
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		if s.rec != nil {
			s.rec.AddRejectedQueueFull()
		}
		return nil, ErrQueueFull
	}
	// Reserve under the lock: reservation order is admission order.
	req.tk = s.pool.ReserveTicket()
	req.enqueuedNS = s.clock()
	// Cannot block: we are the only sender, we checked len < cap under
	// the lock, and receivers only shrink the queue.
	s.queue <- req
	if s.rec != nil {
		s.rec.AddAdmitted()
		s.rec.SetQueueDepth(len(s.queue))
	}
	s.mu.Unlock()
	return &Pending{req: req}, nil
}

// Infer is Submit + Wait: one blocking inference through the
// coalescing queue.
func (s *Server) Infer(ctx context.Context, input *tensor.Tensor) (*arch.RunResult, error) {
	p, err := s.Submit(ctx, input)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

// dispatch is the single coalescing loop: block for the first request
// of a batch, collect until the watermark or the coalesce deadline,
// flush, repeat. When Drain closes the queue the loop flushes whatever
// remains and exits; runBatch answers every request it takes, so done
// closing implies every admitted request was answered.
func (s *Server) dispatch() {
	defer close(s.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	batch := make([]*request, 0, s.cfg.BatchSize)
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		if s.cfg.MaxDelay > 0 {
			timer.Reset(s.cfg.MaxDelay)
			open := true
		collect:
			for open && len(batch) < s.cfg.BatchSize {
				select {
				case r, ok := <-s.queue:
					if !ok {
						open = false
						break collect
					}
					batch = append(batch, r)
				case <-timer.C:
					break collect
				}
			}
			if open && !timer.Stop() {
				// Drain a fired-but-unread timer so the next Reset arms
				// cleanly.
				select {
				case <-timer.C:
				default:
				}
			}
		} else {
			// Greedy mode: take everything already queued, up to the
			// watermark, without waiting.
		greedy:
			for len(batch) < s.cfg.BatchSize {
				select {
				case r, ok := <-s.queue:
					if !ok {
						break greedy
					}
					batch = append(batch, r)
				default:
					break greedy
				}
			}
		}
		if s.rec != nil {
			s.rec.SetQueueDepth(len(s.queue))
		}
		s.runBatch(batch)
	}
}

// runBatch answers every request of one coalesced batch: requests
// whose deadline already expired are culled without touching the pool,
// the rest run concurrently — one routed pool attempt each, so a
// failure or a mid-run deadline on one request never disturbs its
// batch-mates. Returns when the whole batch is answered.
func (s *Server) runBatch(batch []*request) {
	dispatchNS := s.clock()
	if s.rec != nil {
		s.rec.ObserveBatch(len(batch))
		if s.now != nil {
			for _, r := range batch {
				s.rec.ObserveCoalesceWait(dispatchNS - r.enqueuedNS)
			}
		}
	}
	var wg sync.WaitGroup
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			// Expired while queued: never dispatched, no pool work.
			if s.rec != nil {
				s.rec.AddExpiredQueued()
			}
			s.finish(r, response{err: &DeadlineError{Stage: StageQueued, Err: err}})
			continue
		}
		wg.Add(1)
		go func(r *request, n int) {
			defer wg.Done()
			res, err := s.pool.ServeReserved(r.ctx, r.input, r.tk)
			if err != nil {
				if ctxErr := r.ctx.Err(); ctxErr != nil {
					err = &DeadlineError{Stage: StageRunning, Err: ctxErr}
				}
				s.finish(r, response{err: err, batch: n})
				return
			}
			s.finish(r, response{res: res, batch: n})
		}(r, len(batch))
	}
	wg.Wait()
}

// finish delivers a request's response and records its outcome.
func (s *Server) finish(r *request, resp response) {
	if s.rec != nil {
		var de *DeadlineError
		switch {
		case resp.err == nil:
			s.rec.AddServed()
		case errors.As(resp.err, &de) && de.Stage == StageQueued:
			// Already counted by the dispatcher's ExpiredQueued cull.
		default:
			s.rec.AddFailed()
		}
		if s.now != nil {
			s.rec.ObserveLatency(s.now() - r.enqueuedNS)
		}
	}
	r.out <- resp
}

// Draining reports whether the server has stopped admitting.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth returns the current number of admitted-but-undispatched
// requests and the queue capacity.
func (s *Server) QueueDepth() (depth, capacity int) {
	return len(s.queue), cap(s.queue)
}

// Drain gracefully stops the server: admission is cut off first (new
// Submits fail with ErrDraining), then the dispatcher flushes every
// request already in the queue — a non-empty queue is served, not
// dropped — and Drain returns when the last of them is answered. The
// pool is left intact for the owner to dispose of. ctx bounds the
// wait; on expiry the dispatcher keeps flushing in the background and
// Drain returns the context error. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		if s.rec != nil {
			s.rec.SetDraining(true)
		}
		// Safe: admission holds mu and checks draining before sending,
		// so no send can race this close.
		close(s.queue)
	}
	s.mu.Unlock()
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
