package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"repro/internal/arch"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// This file is the HTTP/JSON surface of the serving tier:
//
//	POST /v1/infer         one inference through the coalescing queue
//	POST /v1/infer/stream  NDJSON request lines in, NDJSON results out
//	GET  /healthz          pool occupancy + drain state, 200/503
//	GET  /metrics          Prometheus text: obs + fleet + cache + serve
//
// The handlers translate the server's typed errors into status codes —
// ErrQueueFull 429, ErrDraining 503, *DeadlineError 504 — so clients
// can tell backpressure (retry elsewhere, with backoff) from deadline
// misses (request is gone) without parsing strings.

// HandlerConfig wires the optional exporters of the HTTP surface.
type HandlerConfig struct {
	// DefaultDeadline bounds each request that names no deadline_ms of
	// its own (0: no server-imposed deadline).
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (0: uncapped).
	MaxDeadline time.Duration
	// ObsRec, when non-nil, contributes the hardware-counter snapshot
	// to /metrics.
	ObsRec *obs.Recorder
	// FleetRec, when non-nil, contributes the pool lifecycle series.
	FleetRec *obs.FleetRecorder
	// CacheRec, when non-nil, contributes the image-cache series.
	CacheRec *obs.CacheRecorder
}

// InferRequest is the JSON body of POST /v1/infer and of each
// /v1/infer/stream line.
type InferRequest struct {
	// Input is the flattened input tensor; Shape its dimensions
	// (defaults to [len(Input)]).
	Input []float64 `json:"input"`
	Shape []int     `json:"shape,omitempty"`
	// DeadlineMS, when positive, bounds this request end to end
	// (queueing included), overriding the server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// InferResponse is the JSON body of a successful inference.
type InferResponse struct {
	Prediction int       `json:"prediction"`
	Output     []float64 `json:"output"`
	// BatchFill is how many requests shared the dispatched batch.
	BatchFill int `json:"batch_fill"`
	// Spikes and Cycles are the hardware activity of the run.
	Spikes int64 `json:"spikes"`
	Cycles int64 `json:"cycles"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind is a stable machine-readable discriminator:
	// "queue_full", "draining", "deadline_queued", "deadline_running",
	// "exhausted", "bad_request" or "internal".
	Kind string `json:"kind"`
}

// HealthResponse is the JSON body of /healthz.
type HealthResponse struct {
	// Status is "ok", "draining" or "unhealthy".
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	// QueueDepth / QueueCapacity describe the coalescing queue.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Pool is the fleet occupancy snapshot (fleet.Pool.Stats).
	Pool fleet.PoolStats `json:"pool"`
}

// Health snapshots the server's serveability: the pool occupancy from
// Pool.Stats plus the drain state. Status is "draining" once Drain
// began, "unhealthy" when no replica would pass the serveability check
// (the pool may still rescue one inline, but a health probe should
// see the degradation), and "ok" otherwise.
func (s *Server) Health() HealthResponse {
	depth, capacity := s.QueueDepth()
	h := HealthResponse{
		Draining:      s.Draining(),
		QueueDepth:    depth,
		QueueCapacity: capacity,
		Pool:          s.pool.Stats(),
	}
	switch {
	case h.Draining:
		h.Status = "draining"
	case h.Pool.Healthy == 0:
		h.Status = "unhealthy"
	default:
		h.Status = "ok"
	}
	return h
}

// Handler returns the HTTP surface of the server.
func (s *Server) Handler(hc HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", func(w http.ResponseWriter, r *http.Request) { s.handleInfer(w, r, hc) })
	mux.HandleFunc("/v1/infer/stream", func(w http.ResponseWriter, r *http.Request) { s.handleStream(w, r, hc) })
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) { s.handleMetrics(w, r, hc) })
	return mux
}

// requestCtx applies the effective deadline to a request context.
func requestCtx(ctx context.Context, hc HandlerConfig, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := hc.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if hc.MaxDeadline > 0 && d > hc.MaxDeadline {
		d = hc.MaxDeadline
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// decodeInput validates one InferRequest and builds its tensor.
func decodeInput(req InferRequest) (*tensor.Tensor, error) {
	if len(req.Input) == 0 {
		return nil, errors.New("empty input")
	}
	shape := req.Shape
	if len(shape) == 0 {
		shape = []int{len(req.Input)}
	}
	n := 1
	for _, d := range shape {
		if d < 1 {
			return nil, errors.New("shape dimensions must be positive")
		}
		n *= d
	}
	if n != len(req.Input) {
		return nil, errors.New("shape does not match input length")
	}
	return tensor.FromSlice(req.Input, shape...), nil
}

// errorStatus maps a serving error onto (HTTP status, machine kind).
func errorStatus(err error) (int, string) {
	var de *DeadlineError
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.As(err, &de):
		if de.Stage == StageRunning {
			return http.StatusGatewayTimeout, "deadline_running"
		}
		return http.StatusGatewayTimeout, "deadline_queued"
	case errors.Is(err, fleet.ErrExhausted):
		return http.StatusServiceUnavailable, "exhausted"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "deadline_queued"
	}
	return http.StatusInternalServerError, "internal"
}

// writeJSON emits one JSON body with status code.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // headers are sent; nothing to do on error
}

// writeError emits the typed error body; 429 carries a Retry-After
// hint so well-behaved clients back off instead of hammering.
func writeError(w http.ResponseWriter, err error) {
	status, kind := errorStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Kind: kind})
}

// handleInfer serves POST /v1/infer.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request, hc HandlerConfig) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only", Kind: "bad_request"})
		return
	}
	var req InferRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad JSON: " + err.Error(), Kind: "bad_request"})
		return
	}
	input, err := decodeInput(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: "bad_request"})
		return
	}
	ctx, cancel := requestCtx(r.Context(), hc, req.DeadlineMS)
	defer cancel()
	res, batch, err := s.inferBatchInfo(ctx, input)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, InferResponse{
		Prediction: res.Prediction,
		Output:     res.Output.Data(),
		BatchFill:  batch,
		Spikes:     res.Spikes,
		Cycles:     res.Cycles,
	})
}

// inferBatchInfo is Infer keeping the response's batch-fill figure.
func (s *Server) inferBatchInfo(ctx context.Context, input *tensor.Tensor) (res *arch.RunResult, batch int, err error) {
	p, err := s.Submit(ctx, input)
	if err != nil {
		return nil, 0, err
	}
	resp := <-p.req.out
	return resp.res, resp.batch, resp.err
}

// handleStream serves POST /v1/infer/stream: a gRPC-style bidirectional
// stream over NDJSON. Every request line is admitted in arrival order
// (so the stream's outputs are deterministic for a fixed admission
// sequence) and answered on its own output line, in order; per-line
// failures are reported inline and do not break the stream.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, hc HandlerConfig) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only", Kind: "bad_request"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	dec := json.NewDecoder(r.Body)

	// streamItem pairs a pending request with its per-request cancel;
	// items rejected before admission carry the error and its kind.
	type streamItem struct {
		p      *Pending
		cancel context.CancelFunc
		err    error
		kind   string
	}
	var window []streamItem
	// emit answers the oldest pending item; called once per admitted
	// line past the window bound, then for the tail.
	emit := func(it streamItem) {
		var line interface{}
		switch {
		case it.err != nil:
			line = ErrorResponse{Error: it.err.Error(), Kind: it.kind}
		default:
			res, err := it.p.Wait()
			if err != nil {
				_, kind := errorStatus(err)
				line = ErrorResponse{Error: err.Error(), Kind: kind}
			} else {
				line = InferResponse{Prediction: res.Prediction, Output: res.Output.Data(),
					Spikes: res.Spikes, Cycles: res.Cycles}
			}
			it.cancel()
		}
		_ = enc.Encode(line) // client gone mid-stream: nothing to do
		if flusher != nil {
			flusher.Flush()
		}
	}
	// The submission window lets later lines coalesce with earlier ones
	// while responses still stream back in order.
	const windowSize = 32
	for {
		var req InferRequest
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				_ = enc.Encode(ErrorResponse{Error: "bad JSON: " + err.Error(), Kind: "bad_request"})
			}
			break
		}
		input, err := decodeInput(req)
		if err != nil {
			window = append(window, streamItem{err: err, kind: "bad_request"})
		} else {
			ctx, cancel := requestCtx(r.Context(), hc, req.DeadlineMS)
			p, err := s.Submit(ctx, input)
			if err != nil {
				cancel()
				_, kind := errorStatus(err)
				window = append(window, streamItem{err: err, kind: kind})
			} else {
				window = append(window, streamItem{p: p, cancel: cancel})
			}
		}
		if len(window) >= windowSize {
			emit(window[0])
			window = window[1:]
		}
	}
	for _, it := range window {
		emit(it)
	}
}

// handleHealthz serves GET /healthz: 200 while serving, 503 while
// draining or with zero serveable replicas.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	status := http.StatusOK
	if h.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// handleMetrics serves GET /metrics: the Prometheus text exposition of
// every attached recorder — hardware counters (obs), pool lifecycle
// (fleet), image cache, and the serving tier itself — in fixed order.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request, hc HandlerConfig) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if hc.ObsRec != nil {
		if err := hc.ObsRec.Snapshot().WritePrometheus(w); err != nil {
			return
		}
	}
	if hc.FleetRec != nil {
		if err := hc.FleetRec.Stats().WritePrometheus(w); err != nil {
			return
		}
	}
	if hc.CacheRec != nil {
		if err := hc.CacheRec.Stats().WritePrometheus(w); err != nil {
			return
		}
	}
	if s.rec != nil {
		_ = s.rec.Stats().WritePrometheus(w) // last writer; nothing downstream
	}
}
