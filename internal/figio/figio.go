// Package figio exports experiment results as CSV so the regenerated
// tables and figures can be plotted with external tooling. Every emitter
// writes one figure's data with a header row; cmd/nebula-bench's -csv
// flag drives them.
package figio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/experiments"
)

// writeRows writes a header plus numeric rows as CSV.
func writeRows(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// Fig1CSV writes the device characteristic sweep.
func Fig1CSV(w io.Writer, r experiments.Fig1Result) error {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{f(p.CurrentUA), f(p.DisplacementNM), f(p.ConductanceUS)}
	}
	return writeRows(w, []string{"current_uA", "displacement_nm", "conductance_uS"}, rows)
}

// Fig12CSV writes the layer-wise ISAAC/NEBULA ratios.
func Fig12CSV(w io.Writer, r experiments.Fig12Result) error {
	var rows [][]string
	for _, s := range r.Series {
		for i, name := range s.Layers {
			rows = append(rows, []string{s.Model, name, f(s.Ratio[i])})
		}
	}
	return writeRows(w, []string{"model", "layer", "isaac_over_nebula"}, rows)
}

// Fig13aCSV writes the cross-benchmark ISAAC ratios.
func Fig13aCSV(w io.Writer, r experiments.Fig13aResult) error {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Model, f(row.Ratio)}
	}
	return writeRows(w, []string{"model", "isaac_over_nebula"}, rows)
}

// Fig13bCSV writes the layer-wise INXS ratios.
func Fig13bCSV(w io.Writer, r experiments.Fig13bResult) error {
	rows := make([][]string, len(r.Layers))
	for i, name := range r.Layers {
		rows[i] = []string{name, f(r.Ratio[i])}
	}
	return writeRows(w, []string{"layer", "inxs_over_nebula"}, rows)
}

// Fig14CSV writes the layer-wise peak power ratios.
func Fig14CSV(w io.Writer, r experiments.Fig14Result) error {
	var rows [][]string
	for _, s := range r.Series {
		for i, name := range s.Layers {
			rows = append(rows, []string{s.Model, name, f(s.Ratio[i])})
		}
	}
	return writeRows(w, []string{"model", "layer", "ann_peak_over_snn_peak"}, rows)
}

// Fig17CSV writes the hybrid sweep points.
func Fig17CSV(w io.Writer, r experiments.Fig17Result) error {
	var rows [][]string
	for _, s := range r.Series {
		for _, p := range s.Points {
			rows = append(rows, []string{
				s.Model, p.Mode, strconv.Itoa(p.Timesteps),
				f(p.EnergyVsSNN), f(p.PowerVsANN),
			})
		}
	}
	return writeRows(w, []string{"model", "mode", "timesteps", "energy_vs_snn", "power_vs_ann"}, rows)
}

// TableICSV writes the conversion accuracy table.
func TableICSV(w io.Writer, r experiments.TableIResult) error {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Model, f(row.ANNAccuracy), f(row.SNNAccuracy), strconv.Itoa(row.Timesteps)}
	}
	return writeRows(w, []string{"model", "ann_accuracy", "snn_accuracy", "timesteps"}, rows)
}

// TableIICSV writes the hybrid accuracy sweep.
func TableIICSV(w io.Writer, r experiments.TableIIResult) error {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Model, row.Mode, strconv.Itoa(row.Timesteps), f(row.Accuracy)}
	}
	return writeRows(w, []string{"model", "mode", "timesteps", "accuracy"}, rows)
}

// FaultCSV writes the three-curve fault-resilience study: one row per
// (protection, rate) point with accuracy, refusal count and the headline
// mitigation counters.
func FaultCSV(w io.Writer, r experiments.FaultResilienceResult) error {
	var rows [][]string
	for _, c := range r.Curves {
		for _, p := range c.Points {
			h := p.Health
			rows = append(rows, []string{
				c.Protection.String(), f(p.FaultRate), f(p.Accuracy),
				strconv.Itoa(p.Refused),
				strconv.FormatInt(h.FaultsFound, 10),
				strconv.FormatInt(h.Repaired, 10),
				strconv.FormatInt(h.Compensated, 10),
				strconv.FormatInt(h.RowsRemapped+h.ColsRemapped, 10),
				strconv.FormatInt(h.TilesRetired, 10),
				strconv.FormatInt(h.Unmitigated, 10),
			})
		}
	}
	return writeRows(w, []string{
		"protection", "fault_rate", "accuracy", "refused",
		"faults_found", "repaired", "compensated", "lines_remapped", "tiles_retired", "unmitigated",
	}, rows)
}

// ProfileCSV writes a per-timestep power profile.
func ProfileCSV(w io.Writer, r experiments.PowerProfileResult) error {
	rows := make([][]string, len(r.StepPowerW))
	for i, p := range r.StepPowerW {
		rows[i] = []string{strconv.Itoa(i), f(p)}
	}
	return writeRows(w, []string{"timestep", "power_W"}, rows)
}

// SensitivityCSV writes a sensitivity study.
func SensitivityCSV(w io.Writer, r experiments.SensitivityResult) error {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Knob, f(row.Low), f(row.Baseline), f(row.High), f(row.Span)}
	}
	return writeRows(w, []string{"knob", "at_0.5x", "baseline", "at_2x", "span"}, rows)
}

// Dump is a convenience that panics on write errors (callers writing to
// in-memory buffers or checked files).
func Dump(err error) {
	if err != nil {
		panic(fmt.Sprintf("figio: %v", err))
	}
}
