package figio

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// parse reads back the CSV and returns header + rows.
func parse(t *testing.T, b *bytes.Buffer) ([]string, [][]string) {
	t.Helper()
	r := csv.NewReader(b)
	all, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 1 {
		t.Fatal("empty CSV")
	}
	return all[0], all[1:]
}

func TestFig1CSV(t *testing.T) {
	var b bytes.Buffer
	if err := Fig1CSV(&b, experiments.Fig1DeviceCharacteristic()); err != nil {
		t.Fatal(err)
	}
	header, rows := parse(t, &b)
	if len(header) != 3 || header[0] != "current_uA" {
		t.Fatalf("header %v", header)
	}
	if len(rows) != 49 {
		t.Fatalf("rows %d", len(rows))
	}
}

func TestFig12CSV(t *testing.T) {
	var b bytes.Buffer
	if err := Fig12CSV(&b, experiments.Fig12ISAACLayerwise()); err != nil {
		t.Fatal(err)
	}
	_, rows := parse(t, &b)
	if len(rows) != 8+28 { // AlexNet weighted + MobileNet weighted
		t.Fatalf("rows %d", len(rows))
	}
	// Every row must parse as model,layer,float.
	for _, r := range rows {
		if len(r) != 3 || r[0] == "" || !strings.ContainsAny(r[2], "0123456789") {
			t.Fatalf("bad row %v", r)
		}
	}
}

func TestFig13CSVs(t *testing.T) {
	var a, b bytes.Buffer
	if err := Fig13aCSV(&a, experiments.Fig13aISAACAverage()); err != nil {
		t.Fatal(err)
	}
	if err := Fig13bCSV(&b, experiments.Fig13bINXSLayerwise()); err != nil {
		t.Fatal(err)
	}
	_, rowsA := parse(t, &a)
	_, rowsB := parse(t, &b)
	if len(rowsA) != 8 || len(rowsB) != 12 {
		t.Fatalf("rows: %d, %d", len(rowsA), len(rowsB))
	}
}

func TestFig14And17CSVs(t *testing.T) {
	var a, b bytes.Buffer
	if err := Fig14CSV(&a, experiments.Fig14PeakPower()); err != nil {
		t.Fatal(err)
	}
	if err := Fig17CSV(&b, experiments.Fig17HybridStudy()); err != nil {
		t.Fatal(err)
	}
	_, rowsA := parse(t, &a)
	_, rowsB := parse(t, &b)
	if len(rowsA) == 0 || len(rowsB) != 18 { // 3 workloads × 6 points
		t.Fatalf("rows: %d, %d", len(rowsA), len(rowsB))
	}
}

func TestSensitivityCSV(t *testing.T) {
	var b bytes.Buffer
	if err := SensitivityCSV(&b, experiments.SensitivitySNNvsANN()); err != nil {
		t.Fatal(err)
	}
	header, rows := parse(t, &b)
	if header[0] != "knob" || len(rows) != 6 {
		t.Fatalf("header %v rows %d", header, len(rows))
	}
}

func TestDumpPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dump did not panic")
		}
	}()
	Dump(csv.ErrFieldCount)
}
