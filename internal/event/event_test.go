package event

import (
	"math"
	"sync"
	"testing"

	"repro/internal/convert"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/train"
)

var (
	once sync.Once
	fixC *convert.Converted
	fixD *dataset.Dataset
)

func fixture(t *testing.T) (*convert.Converted, *dataset.Dataset) {
	t.Helper()
	once.Do(func() {
		tr, te := dataset.TrainTest(dataset.MNISTLike, 300, 80, 41)
		fixD = te
		net := models.NewMLP3(1, 16, 10, rng.New(9))
		cfg := train.DefaultConfig()
		cfg.Epochs = 5
		train.Run(net, tr, te, cfg)
		var err error
		fixC, err = convert.Convert(net, tr, convert.DefaultConfig())
		if err != nil {
			panic(err)
		}
	})
	return fixC, fixD
}

func TestEventEngineMatchesDenseSimulator(t *testing.T) {
	// Same encoder seed ⇒ identical output potentials.
	c, d := fixture(t)
	eng, err := FromConverted(c)
	if err != nil {
		t.Fatal(err)
	}
	const T = 80
	for i := 0; i < 10; i++ {
		img, _ := d.Sample(i)
		seed := uint64(100 + i)
		evRes := eng.Run(img, T, snn.NewPoissonEncoder(1.0, rng.New(seed)))
		denseRes := c.SNN.Run(img, T, snn.NewPoissonEncoder(1.0, rng.New(seed)))
		for k := range evRes.Output.Data() {
			a, b := evRes.Output.Data()[k], denseRes.Output.Data()[k]
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("image %d class %d: event %v vs dense %v", i, k, a, b)
			}
		}
		if evRes.Predict() != denseRes.Predict() {
			t.Fatalf("image %d: predictions differ", i)
		}
	}
}

func TestEventEngineSkipsWork(t *testing.T) {
	// The point of event-driven execution: synaptic ops well below the
	// dense count at realistic spike rates.
	c, d := fixture(t)
	eng, err := FromConverted(c)
	if err != nil {
		t.Fatal(err)
	}
	img, _ := d.Sample(0)
	res := eng.Run(img, 100, snn.NewPoissonEncoder(1.0, rng.New(3)))
	if res.SynOps >= res.DenseOps {
		t.Fatalf("event engine did more work than dense: %d vs %d", res.SynOps, res.DenseOps)
	}
	if s := res.Sparsity(); s < 0.3 {
		t.Fatalf("sparsity %v suspiciously low for rate-coded input", s)
	}
	if res.Events <= 0 {
		t.Fatal("no events recorded")
	}
}

func TestEventWorkScalesWithInputBrightness(t *testing.T) {
	c, d := fixture(t)
	eng, err := FromConverted(c)
	if err != nil {
		t.Fatal(err)
	}
	img, _ := d.Sample(0)
	dim := img.Clone()
	dim.ScaleInPlace(0.2)
	bright := eng.Run(img, 60, snn.NewPoissonEncoder(1.0, rng.New(5)))
	faint := eng.Run(dim, 60, snn.NewPoissonEncoder(1.0, rng.New(5)))
	if faint.SynOps >= bright.SynOps {
		t.Fatalf("dimmer input should cost less: %d vs %d", faint.SynOps, bright.SynOps)
	}
}

func TestFromConvertedRejectsConvNets(t *testing.T) {
	tr, _ := dataset.TrainTest(dataset.MNISTLike, 50, 20, 1)
	net := models.NewLeNet5(1, 16, 10, rng.New(1))
	c, err := convert.Convert(net, tr, convert.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromConverted(c); err == nil {
		t.Fatal("conv topology accepted by the dense-only event engine")
	}
}

func TestEventAccuracyMatchesDense(t *testing.T) {
	c, d := fixture(t)
	eng, err := FromConverted(c)
	if err != nil {
		t.Fatal(err)
	}
	const n, T = 40, 80
	correct := 0
	for i := 0; i < n; i++ {
		img, label := d.Sample(i)
		if eng.Run(img, T, snn.NewPoissonEncoder(1.0, rng.New(uint64(i)))).Predict() == label {
			correct++
		}
	}
	if float64(correct)/n < 0.6 {
		t.Fatalf("event-engine accuracy %v", float64(correct)/n)
	}
}
