// Package event is an event-driven execution engine for converted spiking
// networks: instead of evaluating every synapse every timestep (the dense
// time-stepped simulation of package snn), work is performed only when a
// spike occurs — each input event scatters its weight column into the
// downstream membranes.
//
// This is the computational model the paper's power claims rest on
// ("neuromorphic hardware that is able to leverage their event-driven
// behavior", §I): synaptic work scales with spike counts, not with
// network size × timesteps. The engine produces bit-identical results to
// the dense simulator (same IF dynamics, same encoder stream) while
// counting the synaptic operations actually performed, so the
// sparsity-dependent advantage is measurable directly.
//
// The engine supports fully-connected converted networks (Dense stages +
// the Output read-out), the structure of the paper's MLP benchmark.
package event

import (
	"fmt"

	"repro/internal/convert"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// layer is one event-driven IF stage.
type layer struct {
	w    *tensor.Tensor // out×in
	b    []float64
	vth  float64
	mode snn.ResetMode
	u    []float64
	out  int
}

// Network is an event-driven spiking MLP.
type Network struct {
	layers []*layer
	// read-out accumulator
	outW *tensor.Tensor
	outB []float64
	acc  []float64
}

// FromConverted builds an event-driven engine from a converted network.
// Only fully-connected topologies are supported (Dense and Flatten stages
// plus the Output read-out).
func FromConverted(c *convert.Converted) (*Network, error) {
	n := &Network{}
	for _, st := range c.Stages {
		l := c.SNN.Layers[st.SNNLayer]
		switch v := l.(type) {
		case *snn.Dense:
			var bias []float64
			if v.B != nil {
				bias = v.B.Data()
			}
			n.layers = append(n.layers, &layer{
				w: v.W, b: bias, vth: v.IF.VTh, mode: v.IF.Mode, out: v.W.Dim(0),
			})
		case *snn.Flatten:
			// No-op for vector data.
		case *snn.Output:
			n.outW = v.W
			if v.B != nil {
				n.outB = v.B.Data()
			}
		default:
			return nil, fmt.Errorf("event: unsupported stage %T (event engine handles fully-connected networks)", l)
		}
	}
	if n.outW == nil {
		return nil, fmt.Errorf("event: converted network has no read-out stage")
	}
	return n, nil
}

// RunResult reports the inference outcome and the work performed.
type RunResult struct {
	// Output is the accumulated read-out potential.
	Output *tensor.Tensor
	// Events is the total spike count (input + hidden).
	Events int64
	// SynOps counts synaptic updates actually performed: one per
	// (spike, fan-out synapse).
	SynOps int64
	// DenseOps is what a dense time-stepped evaluation would have done:
	// every synapse, every timestep.
	DenseOps int64
	// Timesteps echoes T.
	Timesteps int
}

// Sparsity returns 1 − SynOps/DenseOps: the fraction of synaptic work the
// event-driven engine skipped.
func (r *RunResult) Sparsity() float64 {
	if r.DenseOps == 0 {
		return 0
	}
	return 1 - float64(r.SynOps)/float64(r.DenseOps)
}

// Predict returns the argmax class.
func (r *RunResult) Predict() int { return r.Output.ArgMax() }

// Run performs T timesteps of Poisson-encoded inference. The event order
// within a timestep follows layer depth, matching the feed-forward
// propagation of the dense simulator, so results are identical given the
// same encoder stream.
func (n *Network) Run(img *tensor.Tensor, T int, enc *snn.PoissonEncoder) *RunResult {
	res := &RunResult{Timesteps: T}
	// Reset state.
	for _, l := range n.layers {
		l.u = make([]float64, l.out)
	}
	n.acc = make([]float64, n.outW.Dim(0))

	// Dense-op baseline for the sparsity metric.
	for _, l := range n.layers {
		res.DenseOps += int64(l.w.Size()) * int64(T)
	}
	res.DenseOps += int64(n.outW.Size()) * int64(T)

	spikesIn := make([]int, 0, img.Size())
	for t := 0; t < T; t++ {
		// Input events for this step.
		enc0 := enc.Encode(img)
		spikesIn = spikesIn[:0]
		for i, v := range enc0.Data() {
			if v != 0 {
				spikesIn = append(spikesIn, i)
			}
		}
		res.Events += int64(len(spikesIn))

		active := spikesIn
		var next []int
		for _, l := range n.layers {
			next = l.step(active, res)
			res.Events += int64(len(next))
			active = next
		}
		// Read-out accumulation: scatter the last stage's events.
		outDim := n.outW.Dim(0)
		wd := n.outW.Data()
		in := n.outW.Dim(1)
		for _, j := range active {
			for k := 0; k < outDim; k++ {
				n.acc[k] += wd[k*in+j]
			}
			res.SynOps += int64(outDim)
		}
		if n.outB != nil {
			for k := range n.acc {
				n.acc[k] += n.outB[k]
			}
		}
	}
	res.Output = tensor.FromSlice(append([]float64(nil), n.acc...), len(n.acc))
	return res
}

// step scatters the active input events into the membranes, applies the
// per-step bias current, thresholds, and returns the indices of neurons
// that fired.
func (l *layer) step(active []int, res *RunResult) []int {
	in := l.w.Dim(1)
	wd := l.w.Data()
	// Bias is an always-on input (one event per step).
	if l.b != nil {
		for k := 0; k < l.out; k++ {
			l.u[k] += l.b[k]
		}
	}
	for _, j := range active {
		for k := 0; k < l.out; k++ {
			l.u[k] += wd[k*in+j]
		}
		res.SynOps += int64(l.out)
	}
	var fired []int
	for k := 0; k < l.out; k++ {
		if l.u[k] >= l.vth {
			fired = append(fired, k)
			if l.mode == snn.ResetBySubtraction {
				l.u[k] -= l.vth
			} else {
				l.u[k] = 0
			}
		}
	}
	return fired
}
