// Package snn implements the spiking-neural-network substrate: linear
// integrate-and-fire (IF) neurons (Eq. 2 of the paper), Poisson rate
// encoding of inputs, spiking convolutional/dense/pooling layers, and a
// time-stepped network simulator that records the spike statistics the
// architecture-level energy model consumes.
//
// The simulator follows the rate-encoding framework of §II-A: a neuron's
// activation value is represented by the number of spikes it emits over an
// integration window of T timesteps. IF neurons carry no leak and no
// refractory period, matching the conversion method of §V-A.
package snn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/spikeplane"
	"repro/internal/tensor"
)

// ResetMode selects what happens to the membrane potential when a neuron
// fires.
type ResetMode int

const (
	// ResetBySubtraction subtracts the threshold, preserving the residual
	// charge (Rueckauer et al.); this is the default for converted SNNs.
	ResetBySubtraction ResetMode = iota
	// ResetToZero clamps the membrane back to the resting potential, as in
	// the classical IF description of §II-A.
	ResetToZero
)

// Layer is one stage of a spiking network operating on a single sample.
// Step consumes the input at one timestep and returns the layer output at
// that timestep. Stateful layers accumulate membrane potential between
// Step calls until Reset.
type Layer interface {
	Name() string
	// Reset clears membrane state and spike counters.
	Reset()
	// Step advances one timestep.
	Step(in *tensor.Tensor) *tensor.Tensor
	// Spikes returns the cumulative spike count since Reset and the
	// number of neurons in the layer (0 neurons for stateless stages).
	Spikes() (count float64, neurons int)
}

// IFState is the shared integrate-and-fire machinery used by every
// stateful spiking layer.
//
// The conversion pipeline uses pure IF dynamics (no leak, no refractory
// period, §II-A), but the paper notes the proposal "can be easily
// extended to incorporate such additional characteristics"; Leak and
// Refractory expose those extensions for brain-emulation experiments.
type IFState struct {
	VTh  float64
	Mode ResetMode
	// Leak is the fraction of membrane potential retained each timestep
	// (1 = no leak, the conversion default; 0.9 = 10% leak per step).
	Leak float64
	// Refractory is the number of timesteps a neuron ignores input after
	// firing (0 = none, the conversion default).
	Refractory int

	u     *tensor.Tensor
	count float64
	// cumulative per-neuron spike counts, for rate read-out
	perNeuron *tensor.Tensor
	// refractoryLeft tracks per-neuron remaining refractory steps.
	refractoryLeft []int
}

// newIFState allocates IF state for the given activation shape.
func newIFState(vth float64, mode ResetMode) *IFState {
	return &IFState{VTh: vth, Mode: mode, Leak: 1}
}

// NewIFState allocates a free-standing IF membrane bank. Layer structs own
// one implicitly; per-run execution state (the arch session engine) owns
// its banks explicitly so concurrent inferences never share membranes.
func NewIFState(vth float64, mode ResetMode) *IFState {
	return newIFState(vth, mode)
}

// Fire integrates one timestep of input current and returns the binary
// spike tensor — the exported form of the integrate-and-fire update for
// callers that manage IF state per run instead of per layer.
func (s *IFState) Fire(current *tensor.Tensor) *tensor.Tensor {
	return s.fire(current)
}

// Reset clears membrane and counters.
func (s *IFState) Reset() {
	s.u = nil
	s.perNeuron = nil
	s.refractoryLeft = nil
	s.count = 0
}

// fire integrates the input current and returns the binary spike tensor.
func (s *IFState) fire(current *tensor.Tensor) *tensor.Tensor {
	if s.u == nil || !tensor.SameShape(s.u, current) {
		s.u = tensor.New(current.Shape()...)
		s.perNeuron = tensor.New(current.Shape()...)
		s.refractoryLeft = make([]int, current.Size())
	}
	out := tensor.New(current.Shape()...)
	ud, cd, od, pd := s.u.Data(), current.Data(), out.Data(), s.perNeuron.Data()
	leak := s.Leak
	if leak <= 0 || leak > 1 {
		leak = 1
	}
	for i := range ud {
		if s.refractoryLeft[i] > 0 {
			s.refractoryLeft[i]--
			continue
		}
		ud[i] = ud[i]*leak + cd[i]
		if ud[i] >= s.VTh {
			od[i] = 1
			pd[i]++
			s.count++
			if s.Mode == ResetBySubtraction {
				ud[i] -= s.VTh
			} else {
				ud[i] = 0
			}
			s.refractoryLeft[i] = s.Refractory
		}
	}
	return out
}

// Rates returns per-neuron firing rates (spike count / timesteps). It
// returns nil before the first Step.
func (s *IFState) Rates(timesteps int) *tensor.Tensor {
	if s.perNeuron == nil {
		return nil
	}
	out := s.perNeuron.Clone()
	out.ScaleInPlace(1 / float64(timesteps))
	return out
}

// Dense is a fully-connected spiking layer: u += Wx + b each timestep.
type Dense struct {
	name string
	W    *tensor.Tensor // out×in
	B    *tensor.Tensor // out
	IF   *IFState
}

// NewDense constructs a spiking dense layer with threshold vth.
func NewDense(name string, w, b *tensor.Tensor, vth float64, mode ResetMode) *Dense {
	return &Dense{name: name, W: w, B: b, IF: newIFState(vth, mode)}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Reset implements Layer.
func (d *Dense) Reset() { d.IF.Reset() }

// Spikes implements Layer.
func (d *Dense) Spikes() (float64, int) { return d.IF.count, d.W.Dim(0) }

// Step implements Layer. The input may be any shape with W.Dim(1) elements.
func (d *Dense) Step(in *tensor.Tensor) *tensor.Tensor {
	flat := in.Reshape(1, -1)
	if flat.Dim(1) != d.W.Dim(1) {
		panic(fmt.Sprintf("snn: %s got %d inputs, want %d", d.name, flat.Dim(1), d.W.Dim(1)))
	}
	current := tensor.MatMulTransB(flat, d.W) // 1×out
	if d.B != nil {
		current.Row(0).AddInPlace(d.B)
	}
	return d.IF.fire(current.Reshape(d.W.Dim(0)))
}

// Conv is a spiking convolution layer. Each timestep it convolves the
// incoming spike map with its (possibly grouped) kernel and integrates the
// result into the membrane.
type Conv struct {
	name                string
	W                   *tensor.Tensor // outC×(inC/groups)×K×K
	B                   *tensor.Tensor // outC
	Stride, Pad, Groups int
	IF                  *IFState
	neurons             int
}

// NewConv constructs a spiking convolution with threshold vth.
func NewConv(name string, w, b *tensor.Tensor, stride, pad, groups int, vth float64, mode ResetMode) *Conv {
	return &Conv{name: name, W: w, B: b, Stride: stride, Pad: pad, Groups: groups, IF: newIFState(vth, mode)}
}

// Name implements Layer.
func (c *Conv) Name() string { return c.name }

// Reset implements Layer.
func (c *Conv) Reset() { c.IF.Reset() }

// Spikes implements Layer.
func (c *Conv) Spikes() (float64, int) { return c.IF.count, c.neurons }

// Step implements Layer. Input is a C×H×W spike map.
func (c *Conv) Step(in *tensor.Tensor) *tensor.Tensor {
	outC := c.W.Dim(0)
	kh, kw := c.W.Dim(2), c.W.Dim(3)
	gcIn := c.W.Dim(1)
	gcOut := outC / c.Groups
	h, w := in.Dim(1), in.Dim(2)
	oh := tensor.ConvOutSize(h, kh, c.Stride, c.Pad)
	ow := tensor.ConvOutSize(w, kw, c.Stride, c.Pad)
	current := tensor.New(outC, oh, ow)
	wFlat := c.W.Reshape(outC, gcIn*kh*kw)
	for g := 0; g < c.Groups; g++ {
		sub := tensor.FromSlice(in.Data()[g*gcIn*h*w:(g+1)*gcIn*h*w], gcIn, h, w)
		cols := tensor.Im2Col(sub, kh, kw, c.Stride, c.Pad)
		wg := tensor.FromSlice(wFlat.Data()[g*gcOut*gcIn*kh*kw:(g+1)*gcOut*gcIn*kh*kw], gcOut, gcIn*kh*kw)
		res := tensor.MatMul(wg, cols)
		copy(current.Data()[g*gcOut*oh*ow:(g+1)*gcOut*oh*ow], res.Data())
	}
	if c.B != nil {
		bd := c.B.Data()
		cd := current.Data()
		for ch := 0; ch < outC; ch++ {
			base := ch * oh * ow
			for j := 0; j < oh*ow; j++ {
				cd[base+j] += bd[ch]
			}
		}
	}
	c.neurons = current.Size()
	return c.IF.fire(current)
}

// AvgPoolIF is an average-pooling stage followed by its own IF neuron
// layer, matching the paper's conversion rule of inserting an IF layer
// after every pooling layer so that the whole network stays spiking.
type AvgPoolIF struct {
	name      string
	K, Stride int
	IF        *IFState
	neurons   int
}

// NewAvgPoolIF constructs the pooling+IF stage. The IF threshold is 1 by
// construction after weight normalization.
func NewAvgPoolIF(name string, k, stride int, vth float64, mode ResetMode) *AvgPoolIF {
	return &AvgPoolIF{name: name, K: k, Stride: stride, IF: newIFState(vth, mode)}
}

// Name implements Layer.
func (p *AvgPoolIF) Name() string { return p.name }

// Reset implements Layer.
func (p *AvgPoolIF) Reset() { p.IF.Reset() }

// Spikes implements Layer.
func (p *AvgPoolIF) Spikes() (float64, int) { return p.IF.count, p.neurons }

// Step implements Layer.
func (p *AvgPoolIF) Step(in *tensor.Tensor) *tensor.Tensor {
	pooled := AvgPool(in, p.K, p.Stride)
	p.neurons = pooled.Size()
	return p.IF.fire(pooled)
}

// AvgPool average-pools a (C, H, W) tensor with a k×k window — the pure
// datapath half of AvgPoolIF, shared with the chip simulator's NU pooling
// (spiking mode pairs it with a per-run IFState; ANN mode uses it alone).
func AvgPool(in *tensor.Tensor, k, stride int) *tensor.Tensor {
	c, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	oh := tensor.ConvOutSize(h, k, stride, 0)
	ow := tensor.ConvOutSize(w, k, stride, 0)
	pooled := tensor.New(c, oh, ow)
	inv := 1.0 / float64(k*k)
	id, pd := in.Data(), pooled.Data()
	for ch := 0; ch < c; ch++ {
		inBase := ch * h * w
		outBase := ch * oh * ow
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				s := 0.0
				for ki := 0; ki < k; ki++ {
					rb := inBase + (oi*stride+ki)*w + oj*stride
					for kj := 0; kj < k; kj++ {
						s += id[rb+kj]
					}
				}
				pd[outBase+oi*ow+oj] = s * inv
			}
		}
	}
	return pooled
}

// Flatten reshapes spikes to a vector; it is stateless.
type Flatten struct{ name string }

// NewFlatten constructs a flatten stage.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Reset implements Layer.
func (f *Flatten) Reset() {}

// Spikes implements Layer.
func (f *Flatten) Spikes() (float64, int) { return 0, 0 }

// Step implements Layer.
func (f *Flatten) Step(in *tensor.Tensor) *tensor.Tensor {
	return in.Reshape(in.Size())
}

// Output is the terminal accumulator: it integrates incoming currents
// without firing, so the class decision can read membrane potentials (the
// standard read-out for converted SNNs' final layer).
type Output struct {
	name string
	W    *tensor.Tensor
	B    *tensor.Tensor
	u    *tensor.Tensor
}

// NewOutput constructs the non-firing output accumulator.
func NewOutput(name string, w, b *tensor.Tensor) *Output {
	return &Output{name: name, W: w, B: b}
}

// Name implements Layer.
func (o *Output) Name() string { return o.name }

// Reset implements Layer.
func (o *Output) Reset() { o.u = nil }

// Spikes implements Layer.
func (o *Output) Spikes() (float64, int) { return 0, o.W.Dim(0) }

// Step implements Layer. It returns the accumulated membrane potential.
func (o *Output) Step(in *tensor.Tensor) *tensor.Tensor {
	flat := in.Reshape(1, -1)
	current := tensor.MatMulTransB(flat, o.W)
	if o.B != nil {
		current.Row(0).AddInPlace(o.B)
	}
	cur := current.Reshape(o.W.Dim(0))
	if o.u == nil {
		o.u = tensor.New(cur.Shape()...)
	}
	o.u.AddInPlace(cur)
	return o.u.Clone()
}

// Potentials returns the accumulated output membrane potentials.
func (o *Output) Potentials() *tensor.Tensor {
	if o.u == nil {
		return nil
	}
	return o.u.Clone()
}

// PoissonEncoder converts pixel intensities in [0,1] into Bernoulli spike
// trains with per-timestep firing probability Gain·intensity, the
// rate-encoded Poisson approximation of §V-A.
type PoissonEncoder struct {
	Gain float64
	R    *rng.Rand
}

// NewPoissonEncoder constructs an encoder with the given gain and RNG.
func NewPoissonEncoder(gain float64, r *rng.Rand) *PoissonEncoder {
	return &PoissonEncoder{Gain: gain, R: r}
}

// Encode returns a binary spike tensor for one timestep.
func (e *PoissonEncoder) Encode(img *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(img.Shape()...)
	e.EncodeInto(out, img)
	return out
}

// EncodeInto writes one timestep into a caller-provided tensor of the
// image's shape, drawing exactly the same Bernoulli stream as Encode:
// zero-probability pixels draw nothing (the p > 0 short-circuit), so a
// loop of EncodeInto calls is bitwise identical to a loop of Encode
// calls on the same stream.
//
//nebula:hotpath
func (e *PoissonEncoder) EncodeInto(dst, img *tensor.Tensor) {
	od := dst.Data()
	for i, v := range img.Data() {
		p := v * e.Gain
		if p > 1 {
			p = 1
		}
		if p > 0 && e.R.Bernoulli(p) {
			od[i] = 1
		} else {
			od[i] = 0
		}
	}
}

// EncodeIntoPlane is EncodeInto additionally building the packed spike
// plane of the emitted timestep during the same walk, drawing the same
// Bernoulli stream. Spikes are exactly 1.0, so the plane stays binary
// and is bitwise what Pack(dst) would produce — without the engine
// re-scanning the dense vector.
//
//nebula:hotpath
func (e *PoissonEncoder) EncodeIntoPlane(dst *tensor.Tensor, pl *spikeplane.Plane, img *tensor.Tensor) {
	od := dst.Data()
	pl.Reset(len(od))
	for i, v := range img.Data() {
		p := v * e.Gain
		if p > 1 {
			p = 1
		}
		if p > 0 && e.R.Bernoulli(p) {
			od[i] = 1
			pl.Set(i)
		} else {
			od[i] = 0
		}
	}
}

// DirectEncoder presents pixel intensities as constant analog input
// currents instead of stochastic spike trains — the "analog input layer"
// trick of Rueckauer et al. that removes input sampling noise and reaches
// a given accuracy in fewer timesteps. The first weighted layer's crossbar
// receives graded drive (NEBULA's ANN-style multi-level drivers feeding an
// otherwise spiking pipeline).
type DirectEncoder struct {
	Gain float64
}

// NewDirectEncoder constructs a direct encoder.
func NewDirectEncoder(gain float64) *DirectEncoder { return &DirectEncoder{Gain: gain} }

// Encode returns the scaled intensities (identical every timestep).
func (e *DirectEncoder) Encode(img *tensor.Tensor) *tensor.Tensor {
	out := img.Clone()
	out.ScaleInPlace(e.Gain)
	return out
}

// EncodeInto writes the scaled intensities into a caller-provided
// tensor of the image's shape. No RNG is involved.
//
//nebula:hotpath
func (e *DirectEncoder) EncodeInto(dst, img *tensor.Tensor) {
	od := dst.Data()
	for i, v := range img.Data() {
		od[i] = v * e.Gain
	}
}

// Encoder produces the network input for one timestep.
type Encoder interface {
	Encode(img *tensor.Tensor) *tensor.Tensor
}

// IntoEncoder is the allocation-free extension of Encoder: EncodeInto
// fills a caller-provided tensor instead of allocating one per
// timestep, consuming the encoder's RNG stream exactly as Encode
// would. The session engine uses it to recycle one input buffer
// across all timesteps of a run.
type IntoEncoder interface {
	Encoder
	EncodeInto(dst, img *tensor.Tensor)
}

// PlaneEncoder is the event-driven extension of IntoEncoder: the
// encoder emits the packed spike plane of each timestep alongside the
// dense vector, from the same RNG stream, so the session engine's
// event path starts its plane chain without a Pack re-scan.
type PlaneEncoder interface {
	IntoEncoder
	EncodeIntoPlane(dst *tensor.Tensor, pl *spikeplane.Plane, img *tensor.Tensor)
}

// CountSpikes counts the spike events (nonzero entries) of one encoded
// timestep — the quantity the observability layer attributes to the
// input stage. Graded inputs (DirectEncoder) count driven entries.
func CountSpikes(t *tensor.Tensor) int64 {
	var n int64
	for _, v := range t.Data() {
		if v != 0 {
			n++
		}
	}
	return n
}

// Network is a feed-forward spiking network over a single sample.
type Network struct {
	NameStr string
	Layers  []Layer
}

// NewNetwork constructs a spiking network.
func NewNetwork(name string, layers ...Layer) *Network {
	return &Network{NameStr: name, Layers: layers}
}

// Name returns the network name.
func (n *Network) Name() string { return n.NameStr }

// Reset clears all layer state.
func (n *Network) Reset() {
	for _, l := range n.Layers {
		l.Reset()
	}
}

// Step advances the whole network one timestep.
func (n *Network) Step(in *tensor.Tensor) *tensor.Tensor {
	for _, l := range n.Layers {
		in = l.Step(in)
	}
	return in
}

// RunResult summarizes one inference run.
type RunResult struct {
	// Output is the final accumulated read-out (class scores).
	Output *tensor.Tensor
	// Timesteps is the number of simulated steps.
	Timesteps int
	// LayerSpikes[i] is the cumulative spike count of layer i.
	LayerSpikes []float64
	// LayerNeurons[i] is the neuron count of layer i (0 for stateless).
	LayerNeurons []int
	// InputSpikes counts encoder spikes over the run.
	InputSpikes float64
	// InputNeurons is the input dimensionality.
	InputNeurons int
}

// Predict returns the argmax class of the final read-out.
func (r *RunResult) Predict() int { return r.Output.ArgMax() }

// ActivityPerLayer returns average spikes per neuron per timestep for each
// stateful layer, the quantity plotted in Fig. 4.
func (r *RunResult) ActivityPerLayer() []float64 {
	var out []float64
	for i, s := range r.LayerSpikes {
		n := r.LayerNeurons[i]
		if n == 0 {
			continue
		}
		out = append(out, s/float64(n)/float64(r.Timesteps))
	}
	return out
}

// Run simulates T timesteps of encoded input for a single image and
// returns the result.
func (n *Network) Run(img *tensor.Tensor, T int, enc Encoder) *RunResult {
	n.Reset()
	var out *tensor.Tensor
	inputSpikes := 0.0
	for t := 0; t < T; t++ {
		spikes := enc.Encode(img)
		inputSpikes += spikes.Sum()
		out = n.Step(spikes)
	}
	res := &RunResult{
		Output:       out,
		Timesteps:    T,
		InputSpikes:  inputSpikes,
		InputNeurons: img.Size(),
	}
	for _, l := range n.Layers {
		s, neurons := l.Spikes()
		res.LayerSpikes = append(res.LayerSpikes, s)
		res.LayerNeurons = append(res.LayerNeurons, neurons)
	}
	return res
}

// Trace records per-timestep spiking activity of a single inference run,
// enabling trace-driven (rather than mean-rate) energy replay and
// instantaneous power profiles.
type Trace struct {
	// LayerNames names the stateful layers, in network order.
	LayerNames []string
	// Neurons is each stateful layer's neuron count.
	Neurons []int
	// Weighted marks stateful layers with crossbar weights (Dense/Conv);
	// pooling IF stages are stateful but weightless.
	Weighted []bool
	// Steps[t][l] is the spike count of stateful layer l at timestep t.
	Steps [][]float64
	// InputSteps[t] is the encoder's spike count at timestep t.
	InputSteps []float64
	// InputNeurons is the input dimensionality.
	InputNeurons int
}

// Timesteps returns the trace length.
func (tr *Trace) Timesteps() int { return len(tr.Steps) }

// Rates returns per-layer per-step firing rates (spikes per neuron).
func (tr *Trace) Rates() [][]float64 {
	out := make([][]float64, len(tr.Steps))
	for t, row := range tr.Steps {
		out[t] = make([]float64, len(row))
		for l, s := range row {
			if tr.Neurons[l] > 0 {
				out[t][l] = s / float64(tr.Neurons[l])
			}
		}
	}
	return out
}

// InputRates returns the encoder's per-step firing rate.
func (tr *Trace) InputRates() []float64 {
	out := make([]float64, len(tr.InputSteps))
	for t, s := range tr.InputSteps {
		out[t] = s / float64(tr.InputNeurons)
	}
	return out
}

// RunTraced is Run with per-timestep spike recording.
func (n *Network) RunTraced(img *tensor.Tensor, T int, enc Encoder) (*RunResult, *Trace) {
	n.Reset()
	tr := &Trace{InputNeurons: img.Size()}
	stateful := make([]Layer, 0, len(n.Layers))
	for _, l := range n.Layers {
		switch l.(type) {
		case *Dense, *Conv, *AvgPoolIF:
			stateful = append(stateful, l)
			tr.LayerNames = append(tr.LayerNames, l.Name())
			_, w1 := isWeighted(l)
			tr.Weighted = append(tr.Weighted, w1)
		}
	}
	tr.Neurons = make([]int, len(stateful))
	prevCounts := make([]float64, len(stateful))

	var out *tensor.Tensor
	inputSpikes := 0.0
	for t := 0; t < T; t++ {
		spikes := enc.Encode(img)
		stepIn := spikes.Sum()
		inputSpikes += stepIn
		tr.InputSteps = append(tr.InputSteps, stepIn)
		out = n.Step(spikes)
		row := make([]float64, len(stateful))
		for i, l := range stateful {
			count, neurons := l.Spikes()
			row[i] = count - prevCounts[i]
			prevCounts[i] = count
			tr.Neurons[i] = neurons
		}
		tr.Steps = append(tr.Steps, row)
	}
	res := &RunResult{
		Output:       out,
		Timesteps:    T,
		InputSpikes:  inputSpikes,
		InputNeurons: img.Size(),
	}
	for _, l := range n.Layers {
		s, neurons := l.Spikes()
		res.LayerSpikes = append(res.LayerSpikes, s)
		res.LayerNeurons = append(res.LayerNeurons, neurons)
	}
	return res, tr
}

// isWeighted reports whether a stateful layer carries crossbar weights.
func isWeighted(l Layer) (Layer, bool) {
	switch l.(type) {
	case *Dense, *Conv:
		return l, true
	}
	return l, false
}

// StatefulRates returns per-neuron firing rates of every IF-bearing layer
// after a Run, in layer order. Used by the Fig. 10 correlation analysis.
func (n *Network) StatefulRates(timesteps int) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Dense:
			out = append(out, v.IF.Rates(timesteps))
		case *Conv:
			out = append(out, v.IF.Rates(timesteps))
		case *AvgPoolIF:
			out = append(out, v.IF.Rates(timesteps))
		}
	}
	return out
}
