package snn

import (
	"testing"

	"repro/internal/tensor"
)

// TestLayerAccessors pins the Layer interface surface every layer kind
// exposes — Name, Reset, Spikes — plus the exported free-standing
// IFState constructor the session engine uses for per-run membranes.
func TestLayerAccessors(t *testing.T) {
	w := tensor.New(2, 3)
	for i := range w.Data() {
		w.Data()[i] = 1
	}
	b := tensor.New(2)
	d := NewDense("d", w, b, 1.0, ResetToZero)
	cw := tensor.New(2, 1, 3, 3)
	c := NewConv("c", cw, nil, 1, 1, 1, 1.0, ResetToZero)
	p := NewAvgPoolIF("p", 2, 2, 1.0, ResetToZero)
	f := NewFlatten("f")
	o := NewOutput("o", w, b)

	for _, tc := range []struct {
		want  string
		layer Layer
	}{
		{"d", d}, {"c", c}, {"p", p}, {"f", f}, {"o", o},
	} {
		if got := tc.layer.Name(); got != tc.want {
			t.Fatalf("Name() = %q, want %q", got, tc.want)
		}
	}

	// A spiking step accumulates counts; Reset clears them.
	in := tensor.New(3)
	for i := range in.Data() {
		in.Data()[i] = 5
	}
	d.Step(in)
	if n, total := d.Spikes(); n == 0 || total != 2 {
		t.Fatalf("dense spikes after hot input = %v/%d, want >0/2", n, total)
	}
	d.Reset()
	if n, _ := d.Spikes(); n != 0 {
		t.Fatalf("dense spikes after Reset = %v, want 0", n)
	}

	c.Reset()
	if n, _ := c.Spikes(); n != 0 {
		t.Fatalf("conv spikes after Reset = %v, want 0", n)
	}
	p.Reset()
	f.Reset()
	if n, total := f.Spikes(); n != 0 || total != 0 {
		t.Fatalf("flatten spikes = %v/%d, want 0/0", n, total)
	}
	o.Step(in)
	o.Reset()
	if _, total := o.Spikes(); total != 2 {
		t.Fatalf("output neuron count = %d, want 2", total)
	}

	// The free-standing membrane bank fires like a layer-owned one.
	s := NewIFState(1.0, ResetToZero)
	spikes := s.Fire(in)
	if spikes.Size() != 3 {
		t.Fatalf("Fire returned %d spikes, want 3", spikes.Size())
	}
	fired := false
	for _, v := range spikes.Data() {
		if v == 1 {
			fired = true
		}
	}
	if !fired {
		t.Fatal("hot input never fired the free-standing IF bank")
	}
	s.Reset()
}
