package snn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestIFFiresAtThreshold(t *testing.T) {
	s := newIFState(1.0, ResetBySubtraction)
	in := tensor.FromSlice([]float64{0.4}, 1)
	// 0.4, 0.8 — no spike; 1.2 — spike, residual 0.2
	for i := 0; i < 2; i++ {
		out := s.fire(in)
		if out.Data()[0] != 0 {
			t.Fatalf("premature spike at step %d", i)
		}
	}
	out := s.fire(in)
	if out.Data()[0] != 1 {
		t.Fatal("no spike at threshold crossing")
	}
	if math.Abs(s.u.Data()[0]-0.2) > 1e-12 {
		t.Fatalf("reset-by-subtraction residual = %v, want 0.2", s.u.Data()[0])
	}
}

func TestIFResetToZero(t *testing.T) {
	s := newIFState(1.0, ResetToZero)
	in := tensor.FromSlice([]float64{0.7}, 1)
	s.fire(in)
	out := s.fire(in) // 1.4 >= 1 → spike, reset to 0
	if out.Data()[0] != 1 {
		t.Fatal("no spike")
	}
	if s.u.Data()[0] != 0 {
		t.Fatalf("reset-to-zero left u = %v", s.u.Data()[0])
	}
}

func TestIFRateProportionalToInput(t *testing.T) {
	// With reset-by-subtraction and constant input I < vth, the firing
	// rate over a long window approaches I/vth — the core property that
	// makes ANN-to-SNN conversion work.
	s := newIFState(1.0, ResetBySubtraction)
	const T = 1000
	for _, current := range []float64{0.1, 0.3, 0.7} {
		s.Reset()
		in := tensor.FromSlice([]float64{current}, 1)
		spikes := 0.0
		for i := 0; i < T; i++ {
			spikes += s.fire(in).Data()[0]
		}
		rate := spikes / T
		if math.Abs(rate-current) > 0.01 {
			t.Fatalf("rate %v for input %v", rate, current)
		}
	}
}

func TestIFNeverFiresBelowZeroInput(t *testing.T) {
	s := newIFState(1.0, ResetBySubtraction)
	in := tensor.FromSlice([]float64{-0.5}, 1)
	for i := 0; i < 100; i++ {
		if s.fire(in).Data()[0] != 0 {
			t.Fatal("negative input caused a spike")
		}
	}
}

func TestDenseStep(t *testing.T) {
	w := tensor.FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	d := NewDense("d", w, nil, 1.0, ResetBySubtraction)
	in := tensor.FromSlice([]float64{1, 0}, 2)
	out := d.Step(in) // current = (1, 0) → neuron 0 fires immediately
	if out.Data()[0] != 1 || out.Data()[1] != 0 {
		t.Fatalf("dense spikes = %v", out.Data())
	}
	count, neurons := d.Spikes()
	if count != 1 || neurons != 2 {
		t.Fatalf("Spikes() = %v, %v", count, neurons)
	}
}

func TestDenseBiasAccumulates(t *testing.T) {
	w := tensor.FromSlice([]float64{0}, 1, 1)
	b := tensor.FromSlice([]float64{0.5}, 1)
	d := NewDense("d", w, b, 1.0, ResetBySubtraction)
	zero := tensor.FromSlice([]float64{0}, 1)
	if d.Step(zero).Data()[0] != 0 {
		t.Fatal("spiked too early")
	}
	if d.Step(zero).Data()[0] != 1 {
		t.Fatal("bias did not integrate")
	}
}

func TestConvStepMatchesDense(t *testing.T) {
	// A 1×1 convolution on a 1×1 image is equivalent to a dense layer.
	w := tensor.FromSlice([]float64{2}, 1, 1, 1, 1)
	c := NewConv("c", w, nil, 1, 0, 1, 1.0, ResetBySubtraction)
	in := tensor.FromSlice([]float64{1}, 1, 1, 1)
	out := c.Step(in)
	if out.Data()[0] != 1 {
		t.Fatal("conv IF did not spike on suprathreshold input")
	}
}

func TestConvSpatialIntegration(t *testing.T) {
	// 2×2 all-ones kernel over a 2×2 all-ones spike map sums to 4.
	w := tensor.New(1, 1, 2, 2).Fill(1)
	c := NewConv("c", w, nil, 1, 0, 1, 3.0, ResetBySubtraction)
	in := tensor.New(1, 2, 2).Fill(1)
	out := c.Step(in)
	if out.Dim(1) != 1 || out.Dim(2) != 1 {
		t.Fatalf("conv out shape %v", out.Shape())
	}
	if out.Data()[0] != 1 {
		t.Fatal("summed current 4 ≥ vth 3 must fire")
	}
}

func TestAvgPoolIF(t *testing.T) {
	p := NewAvgPoolIF("p", 2, 2, 0.9, ResetBySubtraction)
	in := tensor.New(1, 2, 2).Fill(1) // average = 1 ≥ 0.9 → fire
	out := p.Step(in)
	if out.Size() != 1 || out.Data()[0] != 1 {
		t.Fatalf("pool IF output %v", out.Data())
	}
	p.Reset()
	half := tensor.FromSlice([]float64{1, 1, 0, 0}, 1, 2, 2) // average 0.5
	if p.Step(half).Data()[0] != 0 {
		t.Fatal("pool fired below threshold")
	}
	if p.Step(half).Data()[0] != 1 {
		t.Fatal("pool membrane did not integrate across steps")
	}
}

func TestFlattenStateless(t *testing.T) {
	f := NewFlatten("f")
	in := tensor.New(2, 3, 4)
	out := f.Step(in)
	if out.NDim() != 1 || out.Size() != 24 {
		t.Fatalf("flatten shape %v", out.Shape())
	}
}

func TestOutputAccumulates(t *testing.T) {
	w := tensor.FromSlice([]float64{1, 1}, 1, 2)
	o := NewOutput("o", w, nil)
	in := tensor.FromSlice([]float64{1, 0}, 2)
	o.Step(in)
	out := o.Step(in)
	if out.Data()[0] != 2 {
		t.Fatalf("output potential = %v, want 2", out.Data()[0])
	}
	o.Reset()
	if o.Potentials() != nil {
		t.Fatal("Potentials after Reset should be nil")
	}
}

func TestPoissonEncoderRate(t *testing.T) {
	r := rng.New(1)
	enc := NewPoissonEncoder(1.0, r)
	img := tensor.FromSlice([]float64{0.25}, 1)
	const T = 20000
	spikes := 0.0
	for i := 0; i < T; i++ {
		spikes += enc.Encode(img).Data()[0]
	}
	rate := spikes / T
	if math.Abs(rate-0.25) > 0.01 {
		t.Fatalf("Poisson rate %v for intensity 0.25", rate)
	}
}

func TestPoissonEncoderBinary(t *testing.T) {
	r := rng.New(2)
	enc := NewPoissonEncoder(2.0, r)
	img := tensor.FromSlice([]float64{0, 0.5, 1.0}, 3)
	for i := 0; i < 100; i++ {
		s := enc.Encode(img)
		for _, v := range s.Data() {
			if v != 0 && v != 1 {
				t.Fatalf("non-binary spike %v", v)
			}
		}
		if s.Data()[0] != 0 {
			t.Fatal("zero intensity spiked")
		}
		if s.Data()[2] != 1 {
			t.Fatal("saturated intensity must always spike")
		}
	}
}

func TestNetworkRun(t *testing.T) {
	// Two-input network: output class 0 integrates input 0, class 1
	// integrates input 1. A bright pixel 0 must win.
	r := rng.New(3)
	w := tensor.FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	net := NewNetwork("toy",
		NewDense("hidden", tensor.FromSlice([]float64{1, 0, 0, 1}, 2, 2), nil, 0.5, ResetBySubtraction),
		NewOutput("out", w, nil),
	)
	img := tensor.FromSlice([]float64{0.9, 0.1}, 2)
	res := net.Run(img, 200, NewPoissonEncoder(1.0, r))
	if res.Predict() != 0 {
		t.Fatalf("predicted %d, want 0 (potentials %v)", res.Predict(), res.Output.Data())
	}
	if res.InputSpikes <= 0 {
		t.Fatal("no input spikes recorded")
	}
	if len(res.LayerSpikes) != 2 {
		t.Fatalf("layer spikes %v", res.LayerSpikes)
	}
	act := res.ActivityPerLayer()
	if len(act) != 2 { // Dense + Output (output has neurons but no spikes)
		t.Fatalf("activity entries: %d", len(act))
	}
	if act[0] <= 0 || act[0] > 1 {
		t.Fatalf("hidden activity %v out of (0,1]", act[0])
	}
}

func TestNetworkResetClearsState(t *testing.T) {
	r := rng.New(4)
	net := NewNetwork("toy",
		NewDense("d", tensor.FromSlice([]float64{1}, 1, 1), nil, 1.0, ResetBySubtraction),
		NewOutput("o", tensor.FromSlice([]float64{1}, 1, 1), nil),
	)
	img := tensor.FromSlice([]float64{0.8}, 1)
	a := net.Run(img, 100, NewPoissonEncoder(1.0, rng.New(9)))
	b := net.Run(img, 100, NewPoissonEncoder(1.0, rng.New(9)))
	if a.Output.Data()[0] != b.Output.Data()[0] {
		t.Fatal("Run is not idempotent given identical encoders — state leaked")
	}
	_ = r
}

func TestStatefulRates(t *testing.T) {
	r := rng.New(5)
	net := NewNetwork("toy",
		NewDense("d", tensor.FromSlice([]float64{1}, 1, 1), nil, 1.0, ResetBySubtraction),
		NewOutput("o", tensor.FromSlice([]float64{1}, 1, 1), nil),
	)
	img := tensor.FromSlice([]float64{0.5}, 1)
	const T = 500
	net.Run(img, T, NewPoissonEncoder(1.0, r))
	rates := net.StatefulRates(T)
	if len(rates) != 1 {
		t.Fatalf("rates count %d", len(rates))
	}
	// Dense neuron receives ~0.5 current per step → rate ≈ 0.5.
	if math.Abs(rates[0].Data()[0]-0.5) > 0.08 {
		t.Fatalf("dense rate %v", rates[0].Data()[0])
	}
}
