package snn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestLeakDecaysMembrane(t *testing.T) {
	s := newIFState(1.0, ResetBySubtraction)
	s.Leak = 0.5
	in := tensor.FromSlice([]float64{0.4}, 1)
	s.fire(in)
	// After one step: u = 0.4. Next zero-input step: u = 0.2.
	zero := tensor.FromSlice([]float64{0}, 1)
	s.fire(zero)
	if math.Abs(s.u.Data()[0]-0.2) > 1e-12 {
		t.Fatalf("leaked membrane %v, want 0.2", s.u.Data()[0])
	}
}

func TestLeakReducesFiringRate(t *testing.T) {
	rate := func(leak float64) float64 {
		s := newIFState(1.0, ResetBySubtraction)
		s.Leak = leak
		in := tensor.FromSlice([]float64{0.3}, 1)
		spikes := 0.0
		for i := 0; i < 500; i++ {
			spikes += s.fire(in).Data()[0]
		}
		return spikes / 500
	}
	if rate(0.8) >= rate(1.0) {
		t.Fatalf("leak did not reduce firing: %v vs %v", rate(0.8), rate(1.0))
	}
}

func TestNoLeakByDefault(t *testing.T) {
	// The conversion pipeline depends on pure IF dynamics.
	s := newIFState(1.0, ResetBySubtraction)
	if s.Leak != 1 {
		t.Fatalf("default leak %v, want 1 (no leak)", s.Leak)
	}
	if s.Refractory != 0 {
		t.Fatalf("default refractory %v, want 0", s.Refractory)
	}
}

func TestRefractoryBlocksIntegration(t *testing.T) {
	s := newIFState(1.0, ResetBySubtraction)
	s.Refractory = 2
	in := tensor.FromSlice([]float64{1.0}, 1)
	out := s.fire(in) // fires immediately
	if out.Data()[0] != 1 {
		t.Fatal("no initial spike")
	}
	// Next two steps are refractory: no spikes, no integration.
	for i := 0; i < 2; i++ {
		if s.fire(in).Data()[0] != 0 {
			t.Fatalf("spiked during refractory step %d", i)
		}
		if s.u.Data()[0] != 0 {
			t.Fatalf("integrated during refractory step %d", i)
		}
	}
	// Third step fires again.
	if s.fire(in).Data()[0] != 1 {
		t.Fatal("did not recover after refractory period")
	}
}

func TestRefractoryCapsRate(t *testing.T) {
	// With refractory R, the max rate is 1/(R+1).
	s := newIFState(1.0, ResetBySubtraction)
	s.Refractory = 3
	in := tensor.FromSlice([]float64{10}, 1) // always suprathreshold
	spikes := 0.0
	const T = 400
	for i := 0; i < T; i++ {
		spikes += s.fire(in).Data()[0]
	}
	maxRate := 1.0 / 4
	if got := spikes / T; math.Abs(got-maxRate) > 0.01 {
		t.Fatalf("rate %v, want ≈%v", got, maxRate)
	}
}

func TestDirectEncoderDeterministic(t *testing.T) {
	enc := NewDirectEncoder(1.0)
	img := tensor.FromSlice([]float64{0.3, 0.7}, 2)
	a := enc.Encode(img)
	b := enc.Encode(img)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("direct encoding must be identical every step")
		}
		if a.Data()[i] != img.Data()[i] {
			t.Fatal("gain 1 must pass intensities through")
		}
	}
}

func TestDirectEncoderConvergesFasterThanPoisson(t *testing.T) {
	// A single IF neuron integrating a constant 0.5 current fires exactly
	// every 2 steps; under Poisson encoding the same mean rate arrives
	// with sampling noise. Direct input should track the ideal rate with
	// lower error at short windows.
	rate := func(enc Encoder, T int) float64 {
		d := NewDense("d", tensor.FromSlice([]float64{1}, 1, 1), nil, 1.0, ResetBySubtraction)
		d.Reset()
		img := tensor.FromSlice([]float64{0.5}, 1)
		spikes := 0.0
		for i := 0; i < T; i++ {
			out := d.Step(enc.Encode(img))
			spikes += out.Data()[0]
		}
		return spikes / float64(T)
	}
	const T = 20
	direct := rate(NewDirectEncoder(1.0), T)
	// Poisson error averaged over several seeds.
	poissonErr := 0.0
	const trials = 10
	for s := uint64(0); s < trials; s++ {
		p := rate(NewPoissonEncoder(1.0, rng.New(s+1)), T)
		if p > 0.5 {
			poissonErr += p - 0.5
		} else {
			poissonErr += 0.5 - p
		}
	}
	poissonErr /= trials
	directErr := direct - 0.5
	if directErr < 0 {
		directErr = -directErr
	}
	if directErr > poissonErr {
		t.Fatalf("direct error %v not below mean Poisson error %v", directErr, poissonErr)
	}
}
