package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// kernelMACPoint is one row of the MACRead microbenchmark sweep: the
// dense reference walk against the frozen kernel at one active-row
// fraction on a full 128×128 array.
type kernelMACPoint struct {
	ActiveFrac    float64 `json:"active_frac"`
	DenseNsPerOp  float64 `json:"dense_ns_per_op"`
	KernelNsPerOp float64 `json:"kernel_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

// kernelSessionBench is the end-to-end half of the record: the same
// compiled SNN workload run once with frozen kernels disabled and once
// with them on (the default).
type kernelSessionBench struct {
	Workload         string  `json:"workload"`
	Images           int     `json:"images"`
	Timesteps        int     `json:"timesteps"`
	DenseSec         float64 `json:"dense_sec"`
	KernelSec        float64 `json:"kernel_sec"`
	DenseImgPerSec   float64 `json:"dense_img_per_sec"`
	KernelImgPerSec  float64 `json:"kernel_img_per_sec"`
	Speedup          float64 `json:"speedup"`
	BitwiseIdentical bool    `json:"bitwise_identical"`
}

// kernelBench is the BENCH_kernel.json schema.
type kernelBench struct {
	Env     benchEnv           `json:"env"`
	MACRead []kernelMACPoint   `json:"macread"`
	Session kernelSessionBench `json:"session"`
}

// benchMACRead times one read path over iters evaluations and returns
// nanoseconds per evaluation. Timing with the wall clock is deliberate:
// this is a command, outside the simulator's determinism boundary.
func benchMACRead(cb *crossbar.Crossbar, in []float64, act []int, iters int) (float64, error) {
	dst := make([]float64, cb.Cols)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := cb.MACReadInto(dst, in, act, nil, nil); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

// runKernelBench measures the frozen-kernel read path against the dense
// reference — first the MACRead microbenchmark sweep across activity
// levels, then the trained MLP workload end to end — verifies the two
// engines agree bit for bit, and writes the record to outPath.
func runKernelBench(images, T int, outPath string) error {
	if images < 8 {
		images = 8
	}

	// --- MACRead sweep: 128×128 array, IR drop on, event-driven reads.
	const rows, cols, iters = 128, 128, 4000
	cb := crossbar.New(rows, cols, device.DefaultParams(), crossbar.Config{IRDropAlpha: 0.3}, nil)
	w := tensor.New(rows, cols)
	r := rng.New(7)
	for i := range w.Data() {
		w.Data()[i] = 2*r.Float64() - 1
	}
	if err := cb.Program(w, 1.0); err != nil {
		return err
	}

	var points []kernelMACPoint
	fmt.Printf("MACRead frozen kernel vs dense reference (%d×%d, %d evals/point)\n", rows, cols, iters)
	for _, frac := range []float64{0.10, 0.50, 0.90, 1.00} {
		in := make([]float64, rows)
		var act []int
		for i := range in {
			if r.Float64() < frac {
				in[i] = r.Float64() + 0.1
				act = append(act, i)
			}
		}
		cb.DropKernel()
		denseNs, err := benchMACRead(cb, in, act, iters)
		if err != nil {
			return err
		}
		cb.BakeKernel()
		kernNs, err := benchMACRead(cb, in, act, iters)
		if err != nil {
			return err
		}
		pt := kernelMACPoint{ActiveFrac: frac, DenseNsPerOp: denseNs, KernelNsPerOp: kernNs, Speedup: denseNs / kernNs}
		points = append(points, pt)
		fmt.Printf("  %3.0f%% active: dense %8.0f ns, kernel %8.0f ns, %5.2fx\n",
			frac*100, denseNs, kernNs, pt.Speedup)
	}

	// --- End-to-end: trained MLP SNN workload, kernels off vs on.
	sim := core.New()
	tr, te := dataset.TrainTest(dataset.MNISTLike, 400, images, 77)
	net := models.NewMLP3(1, 16, 10, rng.New(5))
	pipe, err := sim.Build(net, tr, te, core.DefaultPipelineConfig())
	if err != nil {
		return err
	}
	imgs := make([]*tensor.Tensor, images)
	for i := range imgs {
		imgs[i], _ = pipe.Test.Sample(i)
	}
	ctx := context.Background()

	run := func(opts ...arch.Option) ([]*arch.RunResult, time.Duration, error) {
		sess, err := pipe.CompileChip(T, 1, opts...)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		res, err := sess.RunBatch(ctx, imgs)
		return res, time.Since(start), err
	}

	denseRes, denseDur, err := run(arch.WithFrozenKernel(false))
	if err != nil {
		return err
	}
	kernRes, kernDur, err := run()
	if err != nil {
		return err
	}

	identical := true
	for i := range denseRes {
		dd, kd := denseRes[i].Output.Data(), kernRes[i].Output.Data()
		for j := range dd {
			//nebula:lint-ignore float-eq bitwise determinism check: any rounding difference is the bug being detected
			if dd[j] != kd[j] {
				identical = false
			}
		}
	}

	rec := kernelBench{
		Env:     captureEnv(),
		MACRead: points,
		Session: kernelSessionBench{
			Workload:         "mlp3-mnistlike",
			Images:           images,
			Timesteps:        T,
			DenseSec:         denseDur.Seconds(),
			KernelSec:        kernDur.Seconds(),
			DenseImgPerSec:   float64(images) / denseDur.Seconds(),
			KernelImgPerSec:  float64(images) / kernDur.Seconds(),
			Speedup:          denseDur.Seconds() / kernDur.Seconds(),
			BitwiseIdentical: identical,
		},
	}

	fmt.Printf("session kernel vs dense: %s, %d images, T=%d\n", rec.Session.Workload, images, T)
	fmt.Printf("  dense  engine: %8.2f img/s  (%v)\n", rec.Session.DenseImgPerSec, denseDur.Round(time.Millisecond))
	fmt.Printf("  kernel engine: %8.2f img/s  (%v)\n", rec.Session.KernelImgPerSec, kernDur.Round(time.Millisecond))
	fmt.Printf("  speedup %.2fx, bitwise identical: %v\n", rec.Session.Speedup, identical)
	if !identical {
		return fmt.Errorf("frozen-kernel outputs diverged from the dense engine")
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Printf("  [wrote %s]\n", outPath)
	return nil
}
