package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

// resilienceBench is the JSON record of the chaos study: the study
// result (deterministic for a fixed seed, except the latency block)
// stamped with the runtime environment.
type resilienceBench struct {
	Env    benchEnv                     `json:"env"`
	Result experiments.ResilienceResult `json:"result"`
}

// runResilienceBench runs the seeded chaos study against the session
// pool and writes the availability/accuracy/latency record to outPath.
// smoke selects the tiny chaos-smoke shape `make chaos-smoke` runs
// under -race; the default is the published study shape. The wall
// clock is injected here — internal packages never read it — so the
// study body stays deterministic while the record still carries real
// per-request latency.
func runResilienceBench(smoke bool, outPath string) error {
	cfg := experiments.DefaultResilienceConfig()
	if smoke {
		cfg = experiments.SmokeResilienceConfig()
	} else {
		// Deadline pressure: generous enough to never trip on a loaded
		// CI host, present so every pooled request runs under a real
		// deadline.
		cfg.Deadline = 30 * time.Second
	}
	start := time.Now()
	cfg.Now = func() int64 { return int64(time.Since(start)) }
	res, err := experiments.ResilienceStudy(context.Background(), cfg)
	if err != nil {
		return err
	}
	res.Render(os.Stdout)

	rec := resilienceBench{Env: captureEnv(), Result: res}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Printf("  [wrote %s]\n", outPath)
	return nil
}
