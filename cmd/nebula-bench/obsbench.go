package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// obsModeRecord is one operating mode's counter snapshot plus its
// counter-derived energy attribution.
type obsModeRecord struct {
	Snapshot obs.Snapshot    `json:"snapshot"`
	Energy   obs.Attribution `json:"energy"`
}

// obsBench is the JSON record of the observability experiment. It
// deliberately contains no timings and no parallelism: the record is a
// pure function of the workload and the seed, so the CI determinism
// gate can diff the file across -parallel levels byte for byte.
type obsBench struct {
	Workload  string                   `json:"workload"`
	Images    int                      `json:"images"`
	Timesteps int                      `json:"timesteps"`
	Modes     map[string]obsModeRecord `json:"modes"`
}

// runObsBench streams the same batch through an observed session in
// every operating mode and writes the snapshots and energy attributions
// to outPath. The workload is the untrained MLP3 probe (counters measure
// the simulator, not accuracy), chips are identically seeded per mode,
// and shard merging is input-ordered — so the record is bitwise
// identical at any -parallel, which the CI obs-determinism gate checks.
func runObsBench(images, T, parallel int, outPath string) error {
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	if images < 8 {
		images = 8
	}
	sim := core.New()
	tr, te := dataset.TrainTest(dataset.MNISTLike, 64, images, 7)
	net := models.NewMLP3(1, 16, 10, rng.New(5))
	conv, err := convert.Convert(net, tr, convert.DefaultConfig())
	if err != nil {
		return err
	}
	imgs := make([]*tensor.Tensor, images)
	for i := range imgs {
		imgs[i], _ = te.Sample(i)
	}
	ctx := context.Background()

	modeOpts := map[string][]arch.Option{
		"ann":    {arch.WithMode(arch.ModeANN)},
		"snn":    {arch.WithMode(arch.ModeSNN), arch.WithTimesteps(T)},
		"hybrid": {arch.WithMode(arch.ModeHybrid), arch.WithHybridSplit(1), arch.WithTimesteps(T)},
	}
	rec := obsBench{
		Workload:  "mlp3-mnistlike-untrained",
		Images:    images,
		Timesteps: T,
		Modes:     make(map[string]obsModeRecord, len(modeOpts)),
	}
	for name, opts := range modeOpts {
		r := obs.NewRecorder()
		chip := arch.NewChip(sim.Device, sim.Crossbar, nil)
		sess, err := chip.Compile(conv, append(opts,
			arch.WithSeed(sim.Seed),
			arch.WithParallelism(parallel),
			arch.WithInputShape(imgs[0].Shape()...),
			arch.WithObserver(r))...)
		if err != nil {
			return fmt.Errorf("obs %s: %w", name, err)
		}
		if _, err := sess.RunBatch(ctx, imgs); err != nil {
			return fmt.Errorf("obs %s: %w", name, err)
		}
		snap := r.Snapshot()
		rec.Modes[name] = obsModeRecord{Snapshot: snap, Energy: obs.DefaultAttribution(snap)}
	}

	fmt.Printf("observability: %s, %d images, T=%d, parallelism %d\n",
		rec.Workload, images, T, parallel)
	for _, name := range []string{"ann", "snn", "hybrid"} {
		m := rec.Modes[name]
		fmt.Printf("  %-7s %4d runs  %9d spikes  %8d MAC reads  %8d ADC  %7d hops  %.3e J attributed\n",
			name, m.Snapshot.Runs, m.Snapshot.Totals.SpikesEmitted, m.Snapshot.Totals.MACReads,
			m.Snapshot.Totals.ADCConversions, m.Snapshot.Totals.NoCHops, m.Energy.TotalJ)
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Printf("  [wrote %s]\n", outPath)
	return nil
}
