package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/image"
	"repro/internal/models"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// compileBench is the JSON record of the chip-image study: what a cold
// compile through the cache costs — mapping, programming with
// write-verify, fault injection, BIST, sparing, then encoding and
// installing the image — versus a warm hit that rehydrates the session
// from the stored image, plus the image size on the wire. Cold and warm
// are the cache's own miss and hit paths, the same convention build
// caches report.
type compileBench struct {
	Env              benchEnv `json:"env"`
	Workload         string   `json:"workload"`
	Images           int      `json:"images"`
	Timesteps        int      `json:"timesteps"`
	ColdCompileSec   float64  `json:"cold_compile_sec"`
	WarmLoadSec      float64  `json:"warm_load_sec"`
	Speedup          float64  `json:"speedup"`
	ImageBytes       int      `json:"image_bytes"`
	BitwiseIdentical bool     `json:"bitwise_identical"`
}

// compileBenchChip builds the bench's hardware environment: read noise
// on and the reliability subsystem at study strength, so a cold compile
// pays the full programming pipeline a production chip would —
// write-verify against variation, fault injection, BIST and sparing.
// Every call seeds identically, so sessions are interchangeable.
func compileBenchChip() *arch.Chip {
	chip := arch.NewChip(device.DefaultParams(), crossbar.Config{ReadNoiseSigma: 0.05}, rng.New(91))
	chip.Rel = reliability.StudyConfig(0.01, reliability.ProtectSpareRemap)
	return chip
}

// runCompileBench trains the MLP baseline once, then times a cold
// compile against a warm load of the saved chip image, verifies the
// loaded session reproduces the compiled one bit for bit over a test
// batch, and writes the record to outPath. Median-of-three timings keep
// the record stable on noisy CI runners.
func runCompileBench(images, T int, outPath string) error {
	if images < 8 {
		images = 8
	}
	// A 28×28 input (the paper's MNIST geometry) rather than the 16×16
	// smoke spec: the first layer's 784×128 weight block is what makes a
	// cold compile pay a realistic programming bill.
	spec := dataset.MNISTLike
	spec.Size = 28
	tr, te := dataset.TrainTest(spec, 400, images, 77)
	net := models.NewMLP3(1, 28, 10, rng.New(5))
	conv, err := convert.Convert(net, tr, convert.DefaultConfig())
	if err != nil {
		return err
	}
	imgs := make([]*tensor.Tensor, images)
	for i := range imgs {
		imgs[i], _ = te.Sample(i)
	}
	var benchDirs []string
	defer func() {
		for _, d := range benchDirs {
			_ = os.RemoveAll(d)
		}
	}()
	opts := []arch.Option{
		arch.WithMode(arch.ModeSNN),
		arch.WithTimesteps(T),
		arch.WithSeed(42),
		arch.WithInputShape(imgs[0].Shape()...),
	}

	// Cold is the cache miss path — compile, encode the image, install
	// it — and warm is the hit path — look up, verify, rehydrate. Each
	// cold trial gets a fresh cache directory so it genuinely misses. An
	// untimed warmup run primes the allocator and page cache, and a GC
	// flush before each timed trial keeps collection debt from earlier
	// trials out of this one's wall clock.
	const trials = 5
	newCache := func() (*image.Cache, error) {
		dir, err := os.MkdirTemp("", "nebula-compilebench-")
		if err != nil {
			return nil, err
		}
		benchDirs = append(benchDirs, dir)
		return image.NewCache(dir)
	}
	warmupCache, err := newCache()
	if err != nil {
		return err
	}
	if _, err := compileBenchChip().CompileCached(conv, warmupCache, opts...); err != nil {
		return err
	}
	if _, err := compileBenchChip().CompileCached(conv, warmupCache, opts...); err != nil {
		return err
	}

	coldSecs := make([]float64, trials)
	var sess *arch.Session
	var warmCache *image.Cache
	for i := range coldSecs {
		cache, err := newCache()
		if err != nil {
			return err
		}
		runtime.GC()
		start := time.Now()
		sess, err = compileBenchChip().CompileCached(conv, cache, opts...)
		coldSecs[i] = time.Since(start).Seconds()
		if err != nil {
			return err
		}
		warmCache = cache
	}

	warmSecs := make([]float64, trials)
	var loaded *arch.Session
	for i := range warmSecs {
		runtime.GC()
		start := time.Now()
		loaded, err = compileBenchChip().CompileCached(conv, warmCache, opts...)
		warmSecs[i] = time.Since(start).Seconds()
		if err != nil {
			return err
		}
	}

	var img bytes.Buffer
	if err := sess.SaveImage(&img); err != nil {
		return err
	}

	ctx := context.Background()
	want, err := sess.RunBatch(ctx, imgs)
	if err != nil {
		return err
	}
	got, err := loaded.RunBatch(ctx, imgs)
	if err != nil {
		return err
	}
	identical := true
	for i := range want {
		wd, gd := want[i].Output.Data(), got[i].Output.Data()
		for j := range wd {
			//nebula:lint-ignore float-eq bitwise determinism check: any rounding difference is the bug being detected
			if wd[j] != gd[j] {
				identical = false
			}
		}
	}

	cold, warm := median(coldSecs), median(warmSecs)
	rec := compileBench{
		Env:              captureEnv(),
		Workload:         "mlp3-mnistlike",
		Images:           images,
		Timesteps:        T,
		ColdCompileSec:   cold,
		WarmLoadSec:      warm,
		Speedup:          cold / warm,
		ImageBytes:       img.Len(),
		BitwiseIdentical: identical,
	}

	fmt.Printf("compile vs chip-image load: %s, T=%d, reliability on\n", rec.Workload, T)
	fmt.Printf("  cold compile (program + inject + BIST): %8.2f ms\n", cold*1e3)
	fmt.Printf("  warm load (rehydrate %d-byte image):    %8.2f ms\n", img.Len(), warm*1e3)
	fmt.Printf("  speedup %.1fx, bitwise identical: %v\n", rec.Speedup, identical)
	if !identical {
		return fmt.Errorf("loaded session outputs diverged from the compiled session")
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Printf("  [wrote %s]\n", outPath)
	return nil
}

// median returns the median of a sample.
func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}
