package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunSparseBenchSmoke runs the activity sweep at smoke scale and
// checks the record: env-stamped, one point per activity level, every
// level bitwise identical, and the event runs actually exercising the
// packed path (non-zero packed-word counters). The dense-walk purity
// check (no packed counters on the reference engine) and the identity
// check are enforced inside runSparseBench itself — a violation fails
// the run, not just the record.
func TestRunSparseBenchSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_sparse.json")
	if err := runSparseBench(8, 6, out); err != nil {
		t.Fatalf("runSparseBench: %v", err)
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading sparse record: %v", err)
	}
	var rec sparseBench
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("sparse record is not valid JSON: %v", err)
	}
	if rec.Env.GoVersion == "" {
		t.Fatalf("sparse record missing env stamp: %+v", rec.Env)
	}
	if len(rec.Points) != 4 {
		t.Fatalf("got %d sweep points, want 4: %+v", len(rec.Points), rec.Points)
	}
	for _, pt := range rec.Points {
		if !pt.BitwiseIdentical {
			t.Errorf("activity %v recorded as not bitwise identical", pt.Activity)
		}
		if pt.PackedWords == 0 {
			t.Errorf("activity %v: event run reports zero packed words", pt.Activity)
		}
		if pt.DenseNsPerImg <= 0 || pt.EventNsPerImg <= 0 || pt.Speedup <= 0 {
			t.Errorf("activity %v: degenerate timings: %+v", pt.Activity, pt)
		}
	}
}
