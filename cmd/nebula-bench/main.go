// Command nebula-bench regenerates the tables and figures of the NEBULA
// paper's evaluation section and prints them as text.
//
// Usage:
//
//	nebula-bench -exp all            # everything (trains models; minutes)
//	nebula-bench -exp fig13a         # one experiment
//	nebula-bench -exp table1 -samples 40
//	nebula-bench -exp fig12,fig13a -csv out/   # also write CSV data files
//
// Experiments: fig1, fig4, fig9, fig10, fig12, fig13a, fig13b, fig14,
// fig15, fig16, fig17, table1, table2, table3, noise, ablations,
// sensitivity, profile, faults, session, kernel, sparse, obs,
// resilience, compile, serve, all.
//
// The resilience experiment replays a seeded chaos storm (drift bursts,
// stuck-device onset, replica kills, run faults, deadline pressure)
// against a health-aware session pool and against an unpooled session,
// and records availability/accuracy/latency plus the pool lifecycle
// counters (-resout, default BENCH_resilience.json); -res-smoke runs
// the tiny chaos-smoke shape `make chaos-smoke` gates under -race.
//
// The session experiment times the program-once / run-many engine
// (sequential vs batched at -parallel workers) and records the baseline
// in a JSON file (-benchout, default BENCH_session.json). The kernel
// experiment measures the frozen-conductance read kernels against the
// dense reference walk — a MACRead sweep across activity levels plus
// the trained SNN workload end to end — verifies bitwise identity, and
// records the speedups (-kernelout, default BENCH_kernel.json). The
// sparse experiment sweeps controlled input-activity levels (1%, 10%,
// 50%, dense) through the event-driven stepping engine against the
// dense reference walk, verifies bitwise identity at every level, and
// records the speedups plus the silent-skip/packed-word/repeat-read
// counters (-sparseout, default BENCH_sparse.json). The obs
// experiment streams a batch through observed sessions in every mode
// and records the counter snapshots plus their energy attribution
// (-obsout, default BENCH_obs.json); the record carries no timings, so
// it is bitwise identical at any -parallel — the CI determinism gate
// diffs it across parallelism levels. The compile experiment times a
// full compile (programming, fault injection, BIST) against rehydrating
// the same session from its versioned chip image, verifies the loaded
// session is bitwise identical, and records the speedup and image size
// (-compileout, default BENCH_compile.json).
//
// The serve experiment drives the dynamic-batching inference frontend
// (internal/serve): a determinism phase replays one request sequence
// through servers at several batch shapes and demands bitwise identity
// with a standalone golden session, then an open-loop load phase
// records p50/p99 latency vs offered load, throughput at saturation
// and batch-fill histograms (-serveout, default BENCH_serve.json);
// -serve-smoke runs the tiny clock-free shape `make serve-smoke` gates
// under -race.
//
// -cpuprofile / -memprofile write pprof profiles of whatever experiment
// selection ran (see EXPERIMENTS.md for the analysis workflow).
// Analytic experiments (fig1, fig12-17, table3, ablations, sensitivity)
// run in milliseconds; trained-model experiments (fig4, fig9, fig10,
// table1, table2, noise, profile, faults) train the scaled benchmarks
// first.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/figio"
)

// main delegates to run so profile flushing (and every other defer)
// survives the non-zero exit paths.
func main() { os.Exit(run()) }

func run() int {
	exp := flag.String("exp", "all", "experiment to run (see doc comment)")
	samples := flag.Int("samples", 30, "test images per accuracy measurement")
	trials := flag.Int("trials", 3, "Monte-Carlo trials for the noise study")
	csvDir := flag.String("csv", "", "also write per-experiment CSV files into this directory")
	parallel := flag.Int("parallel", 0, "worker count for the session experiment (0 = NumCPU)")
	benchOut := flag.String("benchout", "BENCH_session.json", "output path for the session throughput record")
	obsOut := flag.String("obsout", "BENCH_obs.json", "output path for the observability counter record")
	kernelOut := flag.String("kernelout", "BENCH_kernel.json", "output path for the frozen-kernel speedup record")
	resOut := flag.String("resout", "BENCH_resilience.json", "output path for the resilience chaos-study record")
	compileOut := flag.String("compileout", "BENCH_compile.json", "output path for the compile-vs-image-load record")
	serveOut := flag.String("serveout", "BENCH_serve.json", "output path for the serving-tier load-study record")
	sparseOut := flag.String("sparseout", "BENCH_sparse.json", "output path for the event-driven sparsity-study record")
	resSmoke := flag.Bool("res-smoke", false, "run the resilience experiment at chaos-smoke scale")
	serveSmoke := flag.Bool("serve-smoke", false, "run the serve experiment at smoke scale (clock-free determinism phase only)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (after a final GC) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nebula-bench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nebula-bench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
			fmt.Printf("  [wrote %s]\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nebula-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "nebula-bench: %v\n", err)
				return
			}
			fmt.Printf("  [wrote %s]\n", *memProfile)
		}()
	}

	// writeCSV stores an experiment's data file when -csv is set.
	writeCSV := func(name string, emit func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "nebula-bench: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nebula-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := emit(f); err != nil {
			fmt.Fprintf(os.Stderr, "nebula-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [wrote %s]\n", path)
	}

	runners := map[string]func() error{
		"fig1": func() error {
			r := experiments.Fig1DeviceCharacteristic()
			r.Render(os.Stdout)
			writeCSV("fig1", func(f *os.File) error { return figio.Fig1CSV(f, r) })
			return nil
		},
		"fig4": func() error {
			r, err := experiments.Fig4SpikingActivity(*samples)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		},
		"fig9": func() error {
			experiments.Fig9QuantizationSweep().Render(os.Stdout)
			return nil
		},
		"fig10": func() error {
			r, err := experiments.Fig10Correlation(*samples)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		},
		"fig12": func() error {
			r := experiments.Fig12ISAACLayerwise()
			r.Render(os.Stdout)
			writeCSV("fig12", func(f *os.File) error { return figio.Fig12CSV(f, r) })
			return nil
		},
		"fig13a": func() error {
			r := experiments.Fig13aISAACAverage()
			r.Render(os.Stdout)
			writeCSV("fig13a", func(f *os.File) error { return figio.Fig13aCSV(f, r) })
			return nil
		},
		"fig13b": func() error {
			r := experiments.Fig13bINXSLayerwise()
			r.Render(os.Stdout)
			writeCSV("fig13b", func(f *os.File) error { return figio.Fig13bCSV(f, r) })
			return nil
		},
		"fig14": func() error {
			r := experiments.Fig14PeakPower()
			r.Render(os.Stdout)
			writeCSV("fig14", func(f *os.File) error { return figio.Fig14CSV(f, r) })
			return nil
		},
		"fig15": func() error {
			experiments.Fig15ComponentBreakdownVGG().Render(os.Stdout)
			return nil
		},
		"fig16": func() error {
			experiments.Fig16ComponentBreakdownAll().Render(os.Stdout)
			return nil
		},
		"fig17": func() error {
			r := experiments.Fig17HybridStudy()
			r.Render(os.Stdout)
			writeCSV("fig17", func(f *os.File) error { return figio.Fig17CSV(f, r) })
			return nil
		},
		"table1": func() error {
			r, err := experiments.TableIConversion(*samples)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			writeCSV("table1", func(f *os.File) error { return figio.TableICSV(f, r) })
			return nil
		},
		"table2": func() error {
			r, err := experiments.TableIIHybrid(*samples)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			writeCSV("table2", func(f *os.File) error { return figio.TableIICSV(f, r) })
			return nil
		},
		"table3": func() error {
			experiments.TableIIIComponents().Render(os.Stdout)
			return nil
		},
		"noise": func() error {
			r, err := experiments.NoiseResilience(*samples, *trials)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		},
		"profile": func() error {
			r, err := experiments.PowerProfile(80)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			writeCSV("profile", func(f *os.File) error { return figio.ProfileCSV(f, r) })
			return nil
		},
		"faults": func() error {
			r, err := experiments.FaultResilience(*samples/2+1, 60)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			writeCSV("faults", func(f *os.File) error { return figio.FaultCSV(f, r) })
			return nil
		},
		"sensitivity": func() error {
			a := experiments.SensitivitySNNvsANN()
			a.Render(os.Stdout)
			writeCSV("sensitivity_snn_vs_ann", func(f *os.File) error { return figio.SensitivityCSV(f, a) })
			b := experiments.SensitivityBaselines()
			b.Render(os.Stdout)
			writeCSV("sensitivity_baselines", func(f *os.File) error { return figio.SensitivityCSV(f, b) })
			return nil
		},
		"session": func() error {
			return runSessionBench(64, 40, *parallel, *benchOut)
		},
		"kernel": func() error {
			return runKernelBench(64, 40, *kernelOut)
		},
		"sparse": func() error {
			return runSparseBench(16, 40, *sparseOut)
		},
		"obs": func() error {
			return runObsBench(16, 20, *parallel, *obsOut)
		},
		"resilience": func() error {
			return runResilienceBench(*resSmoke, *resOut)
		},
		"compile": func() error {
			return runCompileBench(16, 40, *compileOut)
		},
		"serve": func() error {
			return runServeBench(*serveSmoke, *serveOut)
		},
		"ablations": func() error {
			experiments.AblationNUHierarchy().Render(os.Stdout)
			experiments.AblationMorphableTiles().Render(os.Stdout)
			experiments.AblationMembraneStorage().Render(os.Stdout)
			experiments.AblationBitSerialInput().Render(os.Stdout)
			experiments.AblationHybridSplit().Render(os.Stdout)
			experiments.AblationISAACADCScaling().Render(os.Stdout)
			return nil
		},
	}
	order := []string{
		"fig1", "table3", "fig12", "fig13a", "fig13b", "fig14", "fig15",
		"fig16", "fig17", "ablations", "sensitivity", "table1", "table2",
		"fig4", "fig9", "fig10", "noise", "profile", "faults", "session",
		"kernel", "sparse", "obs", "resilience", "compile", "serve",
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = order
	}
	for _, name := range names {
		runner, ok := runners[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "nebula-bench: unknown experiment %q\navailable: %s\n",
				name, strings.Join(order, ", "))
			return 2
		}
		start := time.Now()
		if err := runner(); err != nil {
			fmt.Fprintf(os.Stderr, "nebula-bench: %s: %v\n", name, err)
			return 1
		}
		fmt.Printf("  [%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
