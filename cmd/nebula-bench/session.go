package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// sessionBench is the JSON record of the program-once / run-many
// throughput baseline: one compiled session streaming the test batch
// sequentially versus through the concurrent engine.
type sessionBench struct {
	Env                 benchEnv `json:"env"`
	Workload            string   `json:"workload"`
	Images              int      `json:"images"`
	Timesteps           int      `json:"timesteps"`
	Parallelism         int      `json:"parallelism"`
	SequentialSec       float64  `json:"sequential_sec"`
	ParallelSec         float64  `json:"parallel_sec"`
	SequentialImgPerSec float64  `json:"sequential_img_per_sec"`
	ParallelImgPerSec   float64  `json:"parallel_img_per_sec"`
	Speedup             float64  `json:"speedup"`
	BitwiseIdentical    bool     `json:"bitwise_identical"`
}

// runSessionBench trains the MLP baseline, compiles one sequential and one
// parallel session over identically seeded chips, times the same image
// batch through both, checks the outputs are bitwise identical, and
// writes the record to outPath.
func runSessionBench(images, T, parallel int, outPath string) error {
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	if images < 8 {
		images = 8
	}
	sim := core.New()
	tr, te := dataset.TrainTest(dataset.MNISTLike, 400, images, 77)
	net := models.NewMLP3(1, 16, 10, rng.New(5))
	pipe, err := sim.Build(net, tr, te, core.DefaultPipelineConfig())
	if err != nil {
		return err
	}

	imgs := make([]*tensor.Tensor, images)
	for i := range imgs {
		imgs[i], _ = pipe.Test.Sample(i)
	}
	ctx := context.Background()

	run := func(parallelism int) ([]*arch.RunResult, time.Duration, error) {
		sess, err := pipe.CompileChip(T, parallelism)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		res, err := sess.RunBatch(ctx, imgs)
		return res, time.Since(start), err
	}

	seqRes, seqDur, err := run(1)
	if err != nil {
		return err
	}
	parRes, parDur, err := run(parallel)
	if err != nil {
		return err
	}

	identical := true
	for i := range seqRes {
		sd, pd := seqRes[i].Output.Data(), parRes[i].Output.Data()
		for j := range sd {
			//nebula:lint-ignore float-eq bitwise determinism check: any rounding difference is the bug being detected
			if sd[j] != pd[j] {
				identical = false
			}
		}
	}

	rec := sessionBench{
		Env:                 captureEnv(),
		Workload:            "mlp3-mnistlike",
		Images:              images,
		Timesteps:           T,
		Parallelism:         parallel,
		SequentialSec:       seqDur.Seconds(),
		ParallelSec:         parDur.Seconds(),
		SequentialImgPerSec: float64(images) / seqDur.Seconds(),
		ParallelImgPerSec:   float64(images) / parDur.Seconds(),
		Speedup:             seqDur.Seconds() / parDur.Seconds(),
		BitwiseIdentical:    identical,
	}

	fmt.Printf("session throughput: %s, %d images, T=%d\n", rec.Workload, images, T)
	fmt.Printf("  sequential (parallelism 1):  %8.2f img/s  (%v)\n", rec.SequentialImgPerSec, seqDur.Round(time.Millisecond))
	fmt.Printf("  batched    (parallelism %2d): %8.2f img/s  (%v)\n", parallel, rec.ParallelImgPerSec, parDur.Round(time.Millisecond))
	fmt.Printf("  speedup %.2fx, bitwise identical: %v\n", rec.Speedup, identical)
	if !identical {
		return fmt.Errorf("batched outputs diverged from the sequential run")
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Printf("  [wrote %s]\n", outPath)
	return nil
}
