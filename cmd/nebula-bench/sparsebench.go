package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// sparsePoint is one row of the activity sweep: the same compiled SNN
// workload driven at one controlled input-activity level, run once with
// event-driven stepping (the default) and once on the dense reference
// walk (WithEventDriven(false)). The skip counters come from the event
// runs; the dense runs must report zeros — the dense walk never touches
// the packed path.
type sparsePoint struct {
	Activity         float64 `json:"activity"`
	DenseSec         float64 `json:"dense_sec"`
	EventSec         float64 `json:"event_sec"`
	DenseNsPerImg    float64 `json:"dense_ns_per_img"`
	EventNsPerImg    float64 `json:"event_ns_per_img"`
	Speedup          float64 `json:"speedup"`
	BitwiseIdentical bool    `json:"bitwise_identical"`
	SilentStageSkips int64   `json:"silent_stage_skips"`
	SpikesSkipped    int64   `json:"spikes_skipped"`
	PackedWords      int64   `json:"packed_words"`
	RepeatReads      int64   `json:"repeat_reads"`
}

// sparseBench is the BENCH_sparse.json schema.
type sparseBench struct {
	Env       benchEnv      `json:"env"`
	Workload  string        `json:"workload"`
	Images    int           `json:"images"`
	Timesteps int           `json:"timesteps"`
	Points    []sparsePoint `json:"points"`
}

// runSparseBench measures event-driven stepping against the dense walk
// across input-activity levels, verifies bitwise-identical outputs at
// every level, and writes the record to outPath.
//
// Activity is controlled through the input: every pixel of the
// synthetic image carries the target activity as its intensity, and a
// gain-1 Poisson encoder turns that into Bernoulli spike planes whose
// expected density equals the target. At activity 1.0 every pixel fires
// every timestep, so the sweep's dense endpoint also exercises the
// timestep-repeat cache (identical consecutive planes).
func runSparseBench(images, T int, outPath string) error {
	if images < 8 {
		images = 8
	}

	sim := core.New()
	tr, te := dataset.TrainTest(dataset.MNISTLike, 400, images, 77)
	net := models.NewMLP3(1, 16, 10, rng.New(5))
	pipe, err := sim.Build(net, tr, te, core.DefaultPipelineConfig())
	if err != nil {
		return err
	}
	shape, _ := pipe.Test.Sample(0)
	ctx := context.Background()

	// bernoulli installs a per-run Bernoulli encoder: pixel intensity is
	// the per-timestep firing probability, verbatim.
	bernoulli := arch.WithEncoder(func(r *rng.Rand) snn.Encoder {
		return snn.NewPoissonEncoder(1.0, r)
	})

	// Each batch takes single-digit milliseconds, so one pass is noise;
	// reps repeats the timed batch and the record carries the per-image
	// average. The first (untimed) pass also warms the session arena.
	const reps = 8
	run := func(imgs []*tensor.Tensor, opts ...arch.Option) ([]*arch.RunResult, time.Duration, error) {
		sess, err := pipe.CompileChip(T, 1, append([]arch.Option{bernoulli}, opts...)...)
		if err != nil {
			return nil, 0, err
		}
		res, err := sess.RunBatch(ctx, imgs)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			if _, err := sess.RunBatch(ctx, imgs); err != nil {
				return nil, 0, err
			}
		}
		return res, time.Since(start) / reps, err
	}

	rec := sparseBench{
		Env:       captureEnv(),
		Workload:  "mlp3-mnistlike-bernoulli",
		Images:    images,
		Timesteps: T,
	}

	fmt.Printf("event-driven stepping vs dense walk: %s, %d images, T=%d\n", rec.Workload, images, T)
	for _, activity := range []float64{0.01, 0.10, 0.50, 1.00} {
		imgs := make([]*tensor.Tensor, images)
		for i := range imgs {
			img := tensor.New(shape.Shape()...)
			d := img.Data()
			for j := range d {
				d[j] = activity
			}
			imgs[i] = img
		}

		denseRes, denseDur, err := run(imgs, arch.WithEventDriven(false))
		if err != nil {
			return err
		}
		eventRes, eventDur, err := run(imgs)
		if err != nil {
			return err
		}

		pt := sparsePoint{
			Activity:         activity,
			DenseSec:         denseDur.Seconds(),
			EventSec:         eventDur.Seconds(),
			DenseNsPerImg:    float64(denseDur.Nanoseconds()) / float64(images),
			EventNsPerImg:    float64(eventDur.Nanoseconds()) / float64(images),
			Speedup:          denseDur.Seconds() / eventDur.Seconds(),
			BitwiseIdentical: true,
		}
		for i := range denseRes {
			if denseRes[i].PackedWords != 0 || denseRes[i].SilentStageSkips != 0 || denseRes[i].RepeatReads != 0 {
				return fmt.Errorf("activity %v: dense walk touched the packed path: %+v", activity, denseRes[i])
			}
			dd, ed := denseRes[i].Output.Data(), eventRes[i].Output.Data()
			for j := range dd {
				//nebula:lint-ignore float-eq bitwise determinism check: any rounding difference is the bug being detected
				if dd[j] != ed[j] {
					pt.BitwiseIdentical = false
				}
			}
			if denseRes[i].Prediction != eventRes[i].Prediction || denseRes[i].Spikes != eventRes[i].Spikes {
				pt.BitwiseIdentical = false
			}
			pt.SilentStageSkips += eventRes[i].SilentStageSkips
			pt.SpikesSkipped += eventRes[i].SpikesSkipped
			pt.PackedWords += eventRes[i].PackedWords
			pt.RepeatReads += eventRes[i].RepeatReads
		}
		rec.Points = append(rec.Points, pt)
		fmt.Printf("  %3.0f%% activity: dense %7.2f ms/img, event %7.2f ms/img, %5.2fx  (stage skips %d, spikes skipped %d, repeats %d, identical %v)\n",
			activity*100, pt.DenseNsPerImg/1e6, pt.EventNsPerImg/1e6, pt.Speedup,
			pt.SilentStageSkips, pt.SpikesSkipped, pt.RepeatReads, pt.BitwiseIdentical)
		if !pt.BitwiseIdentical {
			return fmt.Errorf("activity %v: event-driven outputs diverged from the dense walk", activity)
		}
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Printf("  [wrote %s]\n", outPath)
	return nil
}
