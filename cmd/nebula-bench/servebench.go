package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

// serveBench is the JSON record of the serving-tier load study: the
// determinism block (bitwise identity across batch shapes — a pure
// function of the config) and the load block (p50/p99 vs offered load,
// throughput at saturation, batch-fill histograms — real-time figures)
// stamped with the runtime environment.
type serveBench struct {
	Env    benchEnv                `json:"env"`
	Result experiments.ServeResult `json:"result"`
}

// runServeBench runs the load study against the dynamic-batching
// server and writes the record to outPath. smoke selects the tiny
// clock-free shape `make serve-smoke` gates under -race (determinism
// phase only); the default is the published load-study shape. The wall
// clock is injected here — internal packages never read it — so the
// study's determinism phase stays deterministic while the record still
// carries real latency-vs-load curves.
func runServeBench(smoke bool, outPath string) error {
	cfg := experiments.DefaultServeConfig()
	if smoke {
		cfg = experiments.SmokeServeConfig()
	} else {
		start := time.Now()
		cfg.Now = func() int64 { return int64(time.Since(start)) }
	}
	res, err := experiments.ServeStudy(context.Background(), cfg)
	if err != nil {
		return err
	}
	res.Render(os.Stdout)

	rec := serveBench{Env: captureEnv(), Result: res}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Printf("  [wrote %s]\n", outPath)
	return nil
}
