package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// TestRunFig1AndServeSmoke drives the real CLI entry point end to end:
// flag parsing, the profile writers, the CSV side channel, one analytic
// experiment and the smoke-scale serving-tier study, checking the
// BENCH record lands on disk as valid JSON. run() registers its flags
// on the process-global FlagSet, so the whole CLI surface is exercised
// in this one invocation.
func TestRunFig1AndServeSmoke(t *testing.T) {
	dir := t.TempDir()
	serveOut := filepath.Join(dir, "BENCH_serve.json")

	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{
		"nebula-bench",
		"-exp", "fig1,table3,fig12,fig13a,fig13b,fig14,fig15,fig16,fig17,ablations,sensitivity,serve",
		"-serve-smoke",
		"-serveout", serveOut,
		"-csv", filepath.Join(dir, "csv"),
		"-cpuprofile", filepath.Join(dir, "cpu.pprof"),
		"-memprofile", filepath.Join(dir, "mem.pprof"),
	}
	if code := run(); code != 0 {
		t.Fatalf("run() = %d, want 0", code)
	}

	raw, err := os.ReadFile(serveOut)
	if err != nil {
		t.Fatalf("reading serve record: %v", err)
	}
	var rec serveBench
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("serve record is not valid JSON: %v", err)
	}
	if rec.Env.GoVersion == "" {
		t.Fatalf("serve record missing env stamp: %+v", rec.Env)
	}
	if len(rec.Result.Shapes) == 0 {
		t.Fatalf("serve record has no determinism phase: %+v", rec.Result)
	}
	for _, s := range rec.Result.Shapes {
		if s.Mismatched != 0 {
			t.Fatalf("shape batch=%d not bitwise clean in record: %+v", s.BatchSize, s)
		}
	}
	if len(rec.Result.Levels) != 0 {
		t.Fatalf("smoke record grew a load phase: %+v", rec.Result.Levels)
	}

	if _, err := os.Stat(filepath.Join(dir, "csv", "fig1.csv")); err != nil {
		t.Fatalf("fig1 CSV not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cpu.pprof")); err != nil {
		t.Fatalf("cpu profile not written: %v", err)
	}

	// An unknown experiment name is a usage error (exit code 2). run()
	// registers flags on the global FlagSet, so give it a fresh one for
	// the second invocation.
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ExitOnError)
	os.Args = []string{"nebula-bench", "-exp", "no-such-experiment"}
	if code := run(); code != 2 {
		t.Fatalf("run() with unknown experiment = %d, want 2", code)
	}
}
