package main

import "runtime"

// benchEnv stamps the runtime environment into benchmark records so a
// regression diff can tell a code change from a machine change.
type benchEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// captureEnv snapshots the environment of this process.
func captureEnv() benchEnv {
	return benchEnv{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}
