package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePort grabs an ephemeral port from the kernel and releases it for
// the daemon to re-bind. The gap is racy in principle; in a test
// process that just allocated it, collisions don't happen in practice.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// TestServeMainLifecycle boots the real daemon — training, image-cached
// replica compile, HTTP listener, maintenance ticker — serves one
// inference, scrapes /healthz and /metrics, then delivers the SIGTERM
// the unit manager would and requires a clean drain.
func TestServeMainLifecycle(t *testing.T) {
	port := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- serveMain(port, 1, 2, time.Millisecond, 16,
			10*time.Second, time.Minute, 5, 1, 2020,
			t.TempDir(), 50*time.Millisecond, 30*time.Second)
	}()

	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	client := &http.Client{Timeout: 5 * time.Second}

	// Wait for the daemon to train, compile and start listening.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became healthy")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// One inference through the full stack. MNISTLike inputs are 16x16.
	in := struct {
		Input []float64 `json:"input"`
	}{Input: make([]float64, 256)}
	body, _ := json.Marshal(in)
	resp, err := client.Post(base+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d: %s", resp.StatusCode, payload)
	}
	var out struct {
		Prediction int `json:"prediction"`
	}
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatalf("infer response not JSON: %v: %s", err, payload)
	}
	if out.Prediction < 0 || out.Prediction > 9 {
		t.Fatalf("prediction %d out of class range", out.Prediction)
	}

	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"nebula_serve_requests_served_total 1",
		"nebula_fleet_replicas",
		"nebula_image_cache",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Let the maintenance ticker fire at least once before shutdown.
	time.Sleep(150 * time.Millisecond)

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveMain returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}
