// Command nebula-serve is the NEBULA inference daemon: a dynamic-
// batching HTTP frontend (internal/serve) over a health-aware session
// pool (internal/fleet), with replicas optionally rehydrated from a
// chip-image cache for instant spin-up.
//
// Usage:
//
//	nebula-serve -port 8080 -replicas 3 -batch 8 -batch-delay 2ms
//	nebula-serve -image-cache /var/cache/nebula -port 8080
//
// Endpoints:
//
//	POST /v1/infer         {"input":[...], "shape":[...], "deadline_ms":N}
//	POST /v1/infer/stream  NDJSON requests in, NDJSON results out
//	GET  /healthz          pool occupancy + drain state (200/503)
//	GET  /metrics          Prometheus text: obs + fleet + cache + serve
//
// The daemon serves the repo's small trained MLP3 over the synthetic
// MNIST-like set (trained at startup, seconds) — the serving tier is
// the subject here, the model a stand-in. Requests admitted before a
// SIGTERM/SIGINT are served before the process exits: the server stops
// admitting (503), flushes the coalescing queue, then closes the
// listener.
//
// A replica's maintenance (scrubbing, recompiles after retirement)
// runs on the -maintain ticker; every run request is bounded by
// -deadline unless the request names its own deadline_ms.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/image"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/train"
)

// chipSeed seeds every replica's chip, which is what makes replicas
// interchangeable (and the image cache hit after the first compile).
const chipSeed = 91

func main() { os.Exit(run()) }

func run() int {
	port := flag.Int("port", 8080, "HTTP listen port")
	replicas := flag.Int("replicas", 3, "session pool size")
	batch := flag.Int("batch", 8, "batch-size watermark for coalescing")
	batchDelay := flag.Duration("batch-delay", 2*time.Millisecond, "coalesce deadline: max wait for a non-full batch (0 = greedy dispatch)")
	queue := flag.Int("queue", 64, "admission queue depth; admissions past it get HTTP 429")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline when the request names none (0 = unbounded)")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "cap on client-requested deadlines (0 = uncapped)")
	timesteps := flag.Int("timesteps", 20, "SNN evidence window per request")
	parallel := flag.Int("parallel", 0, "pool batch parallelism (0 = NumCPU)")
	seed := flag.Uint64("seed", 2020, "pool RNG seed: the determinism anchor for every served result")
	cacheDir := flag.String("image-cache", "", "chip-image cache directory: replicas past the first rehydrate instead of recompiling (empty = compile each)")
	maintain := flag.Duration("maintain", 10*time.Second, "pool maintenance interval (scrubs, recompiles)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max wait for queued requests on shutdown")
	flag.Parse()

	if err := serveMain(*port, *replicas, *batch, *batchDelay, *queue, *deadline, *maxDeadline,
		*timesteps, *parallel, *seed, *cacheDir, *maintain, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "nebula-serve: %v\n", err)
		return 1
	}
	return 0
}

func serveMain(port, replicas, batch int, batchDelay time.Duration, queue int,
	deadline, maxDeadline time.Duration, timesteps, parallel int, seed uint64,
	cacheDir string, maintain, drainTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The model: the repo's small MLP3, trained on the synthetic set at
	// startup. Identical across replicas by construction.
	fmt.Printf("nebula-serve: training model...\n")
	tr, te := dataset.TrainTest(dataset.MNISTLike, 200, 40, 77)
	net := models.NewMLP3(1, 16, 10, rng.New(5))
	tcfg := train.DefaultConfig()
	tcfg.Epochs = 4
	train.Run(net, tr, te, tcfg)
	conv, err := convert.Convert(net, tr, convert.DefaultConfig())
	if err != nil {
		return err
	}

	newChip := func() *arch.Chip {
		chip := arch.NewChip(device.DefaultParams(), crossbar.Config{ReadNoiseSigma: 0.05}, rng.New(chipSeed))
		chip.Rel = &reliability.Config{
			Protection: reliability.ProtectSpareRemap,
			Policy:     reliability.DefaultPolicy(),
		}
		return chip
	}
	opts := []arch.Option{
		arch.WithMode(arch.ModeSNN),
		arch.WithTimesteps(timesteps),
		arch.WithSeed(seed),
	}
	cacheRec := &obs.CacheRecorder{}
	var factory fleet.Factory
	if cacheDir != "" {
		cache, err := image.NewCache(cacheDir)
		if err != nil {
			return err
		}
		cache.SetMetrics(cacheRec)
		factory = fleet.CachedFactory(newChip, conv, cache, opts...)
	} else {
		factory = func(ctx context.Context) (*arch.Session, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return newChip().Compile(conv, opts...)
		}
	}

	fmt.Printf("nebula-serve: compiling %d replicas (image cache: %q)...\n", replicas, cacheDir)
	fleetRec := &obs.FleetRecorder{}
	compileStart := time.Now()
	pool, err := fleet.NewPool(ctx, fleet.Config{
		Replicas:    replicas,
		Factory:     factory,
		Seed:        seed,
		Parallelism: parallel,
		Rec:         fleetRec,
	})
	if err != nil {
		return err
	}
	fmt.Printf("nebula-serve: pool ready in %v\n", time.Since(compileStart).Round(time.Millisecond))

	serveRec := obs.NewServeRecorder()
	clockStart := time.Now()
	srv, err := serve.New(serve.Config{
		Pool:       pool,
		BatchSize:  batch,
		MaxDelay:   batchDelay,
		QueueDepth: queue,
		Rec:        serveRec,
		Now:        func() int64 { return int64(time.Since(clockStart)) },
	})
	if err != nil {
		return err
	}

	// Background maintenance: scrubs and recompiles on a fixed tick,
	// stopped with the signal context.
	go func() {
		ticker := time.NewTicker(maintain)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				if err := pool.Maintain(context.Background()); err != nil {
					fmt.Fprintf(os.Stderr, "nebula-serve: maintain: %v\n", err)
				}
			}
		}
	}()

	httpSrv := &http.Server{
		Addr: fmt.Sprintf(":%d", port),
		Handler: srv.Handler(serve.HandlerConfig{
			DefaultDeadline: deadline,
			MaxDeadline:     maxDeadline,
			ObsRec:          nil, // per-request counters live in the pool's sessions
			FleetRec:        fleetRec,
			CacheRec:        cacheRec,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("nebula-serve: listening on :%d (batch %d, delay %v, queue %d)\n", port, batch, batchDelay, queue)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (new requests get 503), serve
	// everything already queued, then close the listener.
	fmt.Printf("nebula-serve: draining (timeout %v)...\n", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "nebula-serve: drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "nebula-serve: shutdown: %v\n", err)
	}
	<-errCh // ListenAndServe has returned ErrServerClosed by now
	fmt.Printf("nebula-serve: drained, bye\n")
	return nil
}
