// Command nebula-train trains one of the scaled benchmark networks on a
// synthetic dataset, converts it to a spiking network, and reports
// ANN/quantized/SNN accuracy — the full algorithm-level flow of the paper
// on one model.
//
// Usage:
//
//	nebula-train -model lenet5 -data mnist-like -epochs 6 -timesteps 80
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/modelio"
	"repro/internal/models"
	"repro/internal/rng"
)

func main() {
	model := flag.String("model", "lenet5", "model: mlp3, lenet5, vgg13, mobilenet-v1, svhn-net, alexnet")
	data := flag.String("data", "mnist-like", "dataset: mnist-like, svhn-like, cifar10-like, cifar100-like, imagenet-like")
	epochs := flag.Int("epochs", 6, "training epochs")
	timesteps := flag.Int("timesteps", 80, "SNN evidence-integration window")
	trainN := flag.Int("train", 400, "training samples")
	testN := flag.Int("test", 150, "test samples")
	samples := flag.Int("samples", 50, "test images for the SNN evaluation")
	seed := flag.Uint64("seed", 7, "random seed")
	savePath := flag.String("save", "", "write the trained model to this file")
	flag.Parse()

	builder, ok := models.Zoo[*model]
	if !ok {
		fmt.Fprintf(os.Stderr, "nebula-train: unknown model %q\n", *model)
		os.Exit(2)
	}
	specs := map[string]dataset.Spec{
		"mnist-like":    dataset.MNISTLike,
		"svhn-like":     dataset.SVHNLike,
		"cifar10-like":  dataset.CIFAR10Like,
		"cifar100-like": dataset.CIFAR100Like,
		"imagenet-like": dataset.ImageNetLike,
	}
	spec, ok := specs[*data]
	if !ok {
		fmt.Fprintf(os.Stderr, "nebula-train: unknown dataset %q\n", *data)
		os.Exit(2)
	}

	fmt.Printf("training %s on %s (%d train / %d test, %d epochs)\n",
		*model, *data, *trainN, *testN, *epochs)
	tr, te := dataset.TrainTest(spec, *trainN, *testN, *seed)
	net := builder(spec.Channels, spec.Size, spec.Classes, rng.New(*seed))

	sim := core.New()
	sim.Seed = *seed
	cfg := core.DefaultPipelineConfig()
	cfg.Train.Epochs = *epochs
	cfg.Train.LR = 0.03
	cfg.Train.LRDecayEvery = 3
	cfg.Train.Log = os.Stdout
	p, err := sim.Build(net, tr, te, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nebula-train: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\nquantized ANN accuracy: %.4f\n", p.EvaluateANN())
	res := p.EvaluateSNN(*timesteps, *samples)
	fmt.Printf("converted SNN accuracy: %.4f (T=%d, %d samples)\n", res.Accuracy, res.Timesteps, res.Samples)
	fmt.Printf("mean input spike rate : %.4f\n", res.MeanInputRate)
	fmt.Println("layer-wise spiking activity (Fig. 4 trend):")
	for i, a := range res.MeanActivity {
		fmt.Printf("  stage %2d: %.4f\n", i+1, a)
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nebula-train: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := modelio.Save(f, p.ANN); err != nil {
			fmt.Fprintf(os.Stderr, "nebula-train: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("saved trained model to %s\n", *savePath)
	}
}
