package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureRoot returns the absolute path of the seeded lint fixture
// module (its own go.mod keeps it out of the parent build and lint).
func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "lintmod"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRunJSONGolden pins the machine-readable contract of the three
// flow analyzers end to end: CLI flag parsing, module loading, analyzer
// subsetting and the JSON schema, against a seeded fixture module.
func TestRunJSONGolden(t *testing.T) {
	root := fixtureRoot(t)
	var out, errs bytes.Buffer
	code := run([]string{"-root", root, "-format", "json", "-rules", "genstamp,hotalloc,ctxflow", "./..."}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (seeded errors must fail the gate)\nstderr: %s", code, errs.String())
	}
	if errs.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", errs.String())
	}
	got := strings.ReplaceAll(out.String(), filepath.ToSlash(root), "$ROOT")
	got = strings.ReplaceAll(got, root, "$ROOT")
	goldenPath := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -run TestRunJSONGolden -update)", err)
	}
	if got != string(want) {
		t.Errorf("JSON report drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRunHumanFormat(t *testing.T) {
	root := fixtureRoot(t)
	var out, errs bytes.Buffer
	code := run([]string{"-root", root, "./..."}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	for _, frag := range []string{"[genstamp]", "[hotalloc]", "[ctxflow]", "dev.go", "hot.go", "flow.go"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("human output missing %q:\n%s", frag, out.String())
		}
	}
}

// TestRunRuleSubsetExcludes proves -rules actually narrows the run: the
// determinism analyzer alone sees a clean fixture.
func TestRunRuleSubsetExcludes(t *testing.T) {
	root := fixtureRoot(t)
	var out, errs bytes.Buffer
	if code := run([]string{"-root", root, "-rules", "determinism", "./..."}, &out, &errs); code != 0 {
		t.Fatalf("exit code %d, want 0\nstdout: %s", code, out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	root := fixtureRoot(t)
	cases := []struct {
		name string
		args []string
		frag string
	}{
		{"unknown rule", []string{"-root", root, "-rules", "nosuchrule"}, "unknown rule"},
		{"empty rules", []string{"-root", root, "-rules", ","}, "selected no analyzers"},
		{"unknown format", []string{"-root", root, "-format", "yaml"}, "unknown format"},
		{"bad pattern", []string{"-root", root, "./cmd/..."}, "unsupported pattern"},
		{"missing module", []string{"-root", filepath.Join(root, "nosuchdir")}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errs bytes.Buffer
			if code := run(tc.args, &out, &errs); code != 2 {
				t.Fatalf("exit code %d, want 2", code)
			}
			if !strings.Contains(errs.String(), tc.frag) {
				t.Errorf("stderr %q missing %q", errs.String(), tc.frag)
			}
		})
	}
}

// TestRunList keeps the -list inventory in lockstep with the registry.
func TestRunList(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-list"}, &out, &errs); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	for _, name := range lint.AnalyzerNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s", name)
		}
	}
}

// TestRunJSONAlias keeps the legacy -json flag working.
func TestRunJSONAlias(t *testing.T) {
	root := fixtureRoot(t)
	var out, errs bytes.Buffer
	code := run([]string{"-root", root, "-json", "-rules", "ctxflow", "./..."}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(out.String(), "\"rule\": \"ctxflow\"") {
		t.Errorf("-json did not emit JSON: %s", out.String())
	}
}
