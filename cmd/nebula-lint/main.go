// Command nebula-lint runs the repository's custom static-analysis suite
// (package repro/internal/lint) over the module and reports violations of
// the simulator's determinism and robustness invariants.
//
// Usage:
//
//	nebula-lint ./...                        # lint the whole module (from its root)
//	nebula-lint -format json ./...           # machine-readable report
//	nebula-lint -rules genstamp,hotalloc ./... # run a subset of analyzers
//	nebula-lint -suppressed ./...            # also list suppressed findings
//	nebula-lint -root /path/to/module ./...  # lint another module
//
// Exit status is 0 when no unsuppressed error-severity findings exist,
// 1 when the gate fails, and 2 on usage or load errors. Findings are
// suppressed in source with:
//
//	//nebula:lint-ignore <rule> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nebula-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "human", "output format: human or json")
	jsonOut := fs.Bool("json", false, "emit the report as JSON (alias for -format json)")
	showSuppressed := fs.Bool("suppressed", false, "also list suppressed findings")
	rules := fs.String("rules", "", "comma-separated analyzer subset (default: all); see -list")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	rootFlag := fs.String("root", "", "module root to lint (default: nearest go.mod above the working directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *jsonOut {
		*format = "json"
	}
	if *format != "human" && *format != "json" {
		fmt.Fprintf(stderr, "nebula-lint: unknown format %q (human or json)\n", *format)
		return 2
	}

	// The only supported pattern is the whole module; accept "./..." (and
	// no argument) so the invocation reads like go vet.
	for _, arg := range fs.Args() {
		if arg != "./..." && arg != "all" {
			fmt.Fprintf(stderr, "nebula-lint: unsupported pattern %q (only ./...)\n", arg)
			return 2
		}
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "nebula-lint: %v\n", err)
		return 2
	}

	root := *rootFlag
	if root == "" {
		root, err = moduleRoot()
		if err != nil {
			fmt.Fprintf(stderr, "nebula-lint: %v\n", err)
			return 2
		}
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "nebula-lint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(stderr, "nebula-lint: %v\n", err)
		return 2
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(stderr, "nebula-lint: type error (analysis continues): %v\n", te)
		}
	}

	report := lint.NewReport(lint.Run(pkgs, analyzers))
	if *format == "json" {
		if err := report.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "nebula-lint: %v\n", err)
			return 2
		}
	} else {
		report.WriteHuman(stdout, *showSuppressed)
	}
	if report.Errors > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves a comma-separated -rules list against the
// registry; an empty list selects every analyzer.
func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if rules == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", name, strings.Join(lint.AnalyzerNames(), ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rules selected no analyzers")
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
