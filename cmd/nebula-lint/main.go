// Command nebula-lint runs the repository's custom static-analysis suite
// (package repro/internal/lint) over the module and reports violations of
// the simulator's determinism and robustness invariants.
//
// Usage:
//
//	nebula-lint ./...            # lint the whole module (from its root)
//	nebula-lint -json ./...      # machine-readable report
//	nebula-lint -suppressed ./...# also list suppressed findings
//
// Exit status is 0 when no unsuppressed error-severity findings exist,
// 1 when the gate fails, and 2 on usage or load errors. Findings are
// suppressed in source with:
//
//	//nebula:lint-ignore <rule> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	showSuppressed := flag.Bool("suppressed", false, "also list suppressed findings")
	flag.Parse()

	// The only supported pattern is the whole module; accept "./..." (and
	// no argument) so the invocation reads like go vet.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "all" {
			fmt.Fprintf(os.Stderr, "nebula-lint: unsupported pattern %q (only ./...)\n", arg)
			os.Exit(2)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nebula-lint: %v\n", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nebula-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nebula-lint: %v\n", err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "nebula-lint: type error (analysis continues): %v\n", te)
		}
	}

	report := lint.NewReport(lint.Run(pkgs, lint.Analyzers()))
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "nebula-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		report.WriteHuman(os.Stdout, *showSuppressed)
	}
	if report.Errors > 0 {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
