// Package dev seeds one genstamp violation for the nebula-lint golden
// test: Dev is generation-stamped and Uncovered writes device state
// without invalidating.
package dev

// Dev carries a kernel generation stamp.
type Dev struct {
	gen uint64
	w   []float64
}

func (d *Dev) invalidate() { d.gen++ }

// Covered invalidates before writing: clean.
func (d *Dev) Covered(v float64) {
	d.invalidate()
	d.w[0] = v
}

// Uncovered writes without invalidating: the seeded violation.
func (d *Dev) Uncovered(v float64) {
	d.w[0] = v
}
