// Package flow seeds ctxflow violations for the nebula-lint golden
// test: a misordered ctx parameter and two fresh context roots.
package flow

import "context"

// Misordered takes ctx in the wrong slot.
func Misordered(n int, ctx context.Context) {}

// Fresh roots a context inside internal code.
func Fresh() {
	ctx := context.Background()
	_ = ctx
}

// Stale discards its ctx parameter for a fresh root.
func Stale(ctx context.Context) {
	helper(context.TODO())
}

func helper(ctx context.Context) {}
