// Package hot seeds one hotalloc violation for the nebula-lint golden
// test: Sum is a hot root whose per-call scratch allocation is banned.
package hot

// Sum accumulates xs through a needless scratch copy.
//
//nebula:hotpath
func Sum(xs []float64) float64 {
	scratch := make([]float64, len(xs))
	copy(scratch, xs)
	total := 0.0
	for _, v := range scratch {
		total += v
	}
	return total
}
