package main

import (
	"context"
	"os"
	"runtime"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// runMetrics streams a batch through an observed session and emits the
// recorder snapshot in Prometheus text exposition format on stdout —
// nothing else is printed, so the output pipes straight into a scrape
// file or a diff. The workload is the untrained MLP3 probe (the counters
// measure the simulator, not accuracy), and because shard merging is
// input-ordered the exposition is bitwise identical at any -parallel. A
// non-empty cacheDir routes the compile through the chip-image cache and
// appends the nebula_image_cache_* series to the exposition.
func runMetrics(sim *core.Simulator, batch, T, parallel int, cacheDir string) error {
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	if T <= 0 {
		T = 40
	}
	if batch < 4 {
		batch = 4
	}
	tr, te := dataset.TrainTest(dataset.MNISTLike, 64, batch, 7)
	net := models.NewMLP3(1, 16, 10, rng.New(5))
	conv, err := convert.Convert(net, tr, convert.DefaultConfig())
	if err != nil {
		return err
	}
	imgs := make([]*tensor.Tensor, batch)
	for i := range imgs {
		imgs[i], _ = te.Sample(i)
	}

	rec := obs.NewRecorder()
	cacheRec := &obs.CacheRecorder{}
	opts := []arch.Option{
		arch.WithMode(arch.ModeSNN),
		arch.WithTimesteps(T),
		arch.WithSeed(sim.Seed),
		arch.WithParallelism(parallel),
		arch.WithInputShape(imgs[0].Shape()...),
		arch.WithObserver(rec),
	}
	if cacheDir != "" {
		opts = append(opts, arch.WithImageCache(cacheDir), arch.WithImageCacheMetrics(cacheRec))
	}
	chip := arch.NewChip(sim.Device, sim.Crossbar, nil)
	sess, err := chip.Compile(conv, opts...)
	if err != nil {
		return err
	}
	if _, err := sess.RunBatch(context.Background(), imgs); err != nil {
		return err
	}
	if err := rec.Snapshot().WritePrometheus(os.Stdout); err != nil {
		return err
	}
	if cacheDir != "" {
		return cacheRec.Stats().WritePrometheus(os.Stdout)
	}
	return nil
}
