// Command nebula-sim maps a full-size paper workload onto the NEBULA chip
// and prints the placement, energy and power reports in all three
// operating modes.
//
// Usage:
//
//	nebula-sim -workload vgg13-cifar10
//	nebula-sim -workload alexnet -timesteps 500 -hybrid 3
//	nebula-sim -throughput -batch 32 -parallel 8   # session-engine probe
//	nebula-sim -metrics -batch 16 -parallel 4      # counter snapshot as Prometheus text
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/placement"
	"repro/internal/reliability"
)

func workloads() map[string]models.Workload {
	out := map[string]models.Workload{}
	for _, w := range models.PaperWorkloads() {
		out[w.Name] = w
	}
	return out
}

func main() {
	name := flag.String("workload", "vgg13-cifar10", "workload name (see -list)")
	list := flag.Bool("list", false, "list available workloads")
	timesteps := flag.Int("timesteps", 0, "SNN window (0 = the workload's Table I value)")
	hybridK := flag.Int("hybrid", 3, "non-spiking layers in the hybrid report")
	schedule := flag.Bool("schedule", false, "print the compiled per-core configuration")
	traffic := flag.Bool("traffic", false, "simulate routed NoC traffic for one inference")
	meshSize := flag.Int("mesh", 14, "mesh dimension for placement (default 14×14)")
	health := flag.Bool("health", false, "run the chip-scale BIST health scan over the mapped workload")
	faultRate := flag.Float64("faultrate", 0.05, "device fault rate for -health (lines at rate/20)")
	protection := flag.String("protection", "spare", "protection level for -health: none|verify|spare")
	healthSeed := flag.Uint64("health-seed", 2020, "chip seed for -health (totals are deterministic per seed)")
	throughput := flag.Bool("throughput", false, "run the session-engine throughput probe (batched vs sequential)")
	metrics := flag.Bool("metrics", false, "stream a batch through an observed session and print the counter snapshot as Prometheus text")
	batch := flag.Int("batch", 32, "images per batch for -throughput / -metrics")
	parallel := flag.Int("parallel", 0, "worker count for -throughput / -metrics (0 = NumCPU)")
	imageCache := flag.String("image-cache", "", "chip-image cache directory for -throughput / -metrics compiles: a warm rerun rehydrates the chip from the cached image instead of re-programming (empty = compile fresh)")
	flag.Parse()

	ws := workloads()
	if *list {
		for _, w := range models.PaperWorkloads() {
			fmt.Printf("  %-22s %-10s %2d weighted layers, T=%d\n",
				w.Name, w.Dataset, len(w.WeightedLayers()), w.Timesteps)
		}
		return
	}
	w, ok := ws[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "nebula-sim: unknown workload %q (use -list)\n", *name)
		os.Exit(2)
	}
	T := *timesteps
	if T == 0 {
		T = w.Timesteps
	}

	sim := core.New()

	if *throughput {
		if err := runThroughput(sim, *batch, *timesteps, *parallel, *imageCache); err != nil {
			fmt.Fprintf(os.Stderr, "nebula-sim: throughput: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *metrics {
		if err := runMetrics(sim, *batch, *timesteps, *parallel, *imageCache); err != nil {
			fmt.Fprintf(os.Stderr, "nebula-sim: metrics: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *health {
		prot, err := reliability.ParseProtection(*protection)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nebula-sim: %v\n", err)
			os.Exit(2)
		}
		rel := reliability.StudyConfig(*faultRate, prot)
		np := mapping.MapWorkload(w)
		fmt.Printf("BIST health scan: %s, device fault rate %.4f, protection %s, seed %d\n",
			w.Name, *faultRate, prot, *healthSeed)
		rpt, err := arch.HealthScan(context.Background(), np, sim.Device, crossbar.Config{}, rel, *healthSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nebula-sim: health scan: %v\n", err)
			os.Exit(1)
		}
		rpt.Render(os.Stdout)
		if rpt.Degraded || !rpt.Healthy(rel.Policy.MaxUnmitigatedFrac) {
			fmt.Fprintf(os.Stderr, "nebula-sim: health scan: chip degraded (unmitigated fraction %.4f, policy %.4f)\n",
				rpt.UnmitigatedFrac(), rel.Policy.MaxUnmitigatedFrac)
			os.Exit(1)
		}
		return
	}

	sim.DescribeMapping(w, os.Stdout)

	ann := sim.EstimateANN(w)
	snn := sim.EstimateSNN(w, T)
	hyb := sim.EstimateHybrid(w, T/2, *hybridK)

	fmt.Printf("\nenergy & power (T=%d, hybrid: %d ANN layers @ T=%d)\n", T, *hybridK, T/2)
	fmt.Printf("  mode    energy (µJ)   time (µs)   avg power (mW)   peak power (mW)\n")
	fmt.Printf("  ANN     %10.3f   %9.2f   %13.3f   %14.3f\n",
		ann.EnergyJ*1e6, ann.TimeS*1e6, ann.AvgPowerW*1e3, ann.PeakPowerW*1e3)
	fmt.Printf("  SNN     %10.3f   %9.2f   %13.3f   %14.3f\n",
		snn.EnergyJ*1e6, snn.TimeS*1e6, snn.AvgPowerW*1e3, snn.PeakPowerW*1e3)
	fmt.Printf("  hybrid  %10.3f   %9.2f   %13.3f   %14.3f\n",
		hyb.EnergyJ*1e6, hyb.TimeS*1e6, hyb.AvgPowerW*1e3, hyb.PeakPowerW*1e3)
	fmt.Printf("\nheadline ratios: E_SNN/E_ANN = %.2f   P_ANN/P_SNN = %.2f\n",
		snn.EnergyJ/ann.EnergyJ, ann.AvgPowerW/snn.AvgPowerW)

	if *schedule || *traffic {
		np := mapping.MapWorkload(w)
		a, err := placement.Place(np, *meshSize, *meshSize)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nebula-sim: %v\n", err)
			os.Exit(1)
		}
		if *schedule {
			fmt.Println()
			sched, err := compiler.Compile(a)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nebula-sim: %v\n", err)
				os.Exit(1)
			}
			sched.Render(os.Stdout)
			cost := sched.ProgrammingCost(sim.Device)
			fmt.Printf("  weight loading: %d writes, %.1f nJ, %.2f ms serial\n",
				cost.Writes, cost.EnergyJ*1e9, cost.TimeS*1e3)
		}
		if *traffic {
			fmt.Println()
			annT := a.SimulateTraffic(placement.ANNTraffic())
			fmt.Printf("routed NoC traffic (ANN pass): %d packets, %.2f nJ, makespan %.2f µs, %.2f mean hops (analytic assumption %.2f)\n",
				annT.Stats.Packets, annT.EnergyJ()*1e9, annT.MakespanNS/1e3,
				annT.MeanHopsObserved, float64(*meshSize)*2/3)
		}
	}
}
