package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// runThroughput measures the serving throughput of the session engine on
// a synthetic MLP: the network is converted (unquantized, untrained — the
// probe measures the simulator, not accuracy) and compiled once per
// parallelism level, then the same batch streams through both sessions.
// Identically seeded sessions must agree bit for bit, so the probe also
// doubles as a determinism check on the installed CPU count. A non-empty
// cacheDir routes the compiles through the chip-image cache, so a rerun
// of the probe rehydrates its chips from disk and reports the hit/miss
// tally.
func runThroughput(sim *core.Simulator, batch, T, parallel int, cacheDir string) error {
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	if T <= 0 {
		T = 40
	}
	if batch < 4 {
		batch = 4
	}
	tr, te := dataset.TrainTest(dataset.MNISTLike, 64, batch, 7)
	net := models.NewMLP3(1, 16, 10, rng.New(5))
	conv, err := convert.Convert(net, tr, convert.DefaultConfig())
	if err != nil {
		return err
	}
	imgs := make([]*tensor.Tensor, batch)
	for i := range imgs {
		imgs[i], _ = te.Sample(i)
	}

	cacheRec := &obs.CacheRecorder{}
	run := func(parallelism int) ([]*arch.RunResult, time.Duration, error) {
		opts := []arch.Option{
			arch.WithMode(arch.ModeSNN),
			arch.WithTimesteps(T),
			arch.WithSeed(sim.Seed),
			arch.WithParallelism(parallelism),
			arch.WithInputShape(imgs[0].Shape()...),
		}
		if cacheDir != "" {
			opts = append(opts, arch.WithImageCache(cacheDir), arch.WithImageCacheMetrics(cacheRec))
		}
		chip := arch.NewChip(sim.Device, sim.Crossbar, nil)
		sess, err := chip.Compile(conv, opts...)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		res, err := sess.RunBatch(context.Background(), imgs)
		return res, time.Since(start), err
	}

	seqRes, seqDur, err := run(1)
	if err != nil {
		return err
	}
	parRes, parDur, err := run(parallel)
	if err != nil {
		return err
	}
	for i := range seqRes {
		sd, pd := seqRes[i].Output.Data(), parRes[i].Output.Data()
		for j := range sd {
			//nebula:lint-ignore float-eq bitwise determinism check: any rounding difference is the bug being detected
			if sd[j] != pd[j] {
				return fmt.Errorf("image %d diverged between sequential and parallel runs", i)
			}
		}
	}

	fmt.Printf("session throughput probe: mlp3 (untrained), %d images, T=%d\n", batch, T)
	fmt.Printf("  sequential (parallelism 1):  %8.2f img/s  (%v)\n",
		float64(batch)/seqDur.Seconds(), seqDur.Round(time.Millisecond))
	fmt.Printf("  batched    (parallelism %2d): %8.2f img/s  (%v)\n",
		parallel, float64(batch)/parDur.Seconds(), parDur.Round(time.Millisecond))
	fmt.Printf("  speedup %.2fx, outputs bitwise identical\n", seqDur.Seconds()/parDur.Seconds())
	if cacheDir != "" {
		st := cacheRec.Stats()
		fmt.Printf("  image cache %s: %d hits, %d misses, %d stores\n",
			cacheDir, st.Hits, st.Misses, st.Stores)
	}
	return nil
}
