// hybridmode: the SNN-ANN hybrid study of §V-B and Fig. 17.
//
// Trains the scaled VGG-13, converts it, then sweeps hybrid split points
// and integration windows — showing how a few non-spiking layers recover
// accuracy at short windows while energy stays below the pure SNN and
// power below the pure ANN.
//
//	go run ./examples/hybridmode
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/hybrid"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	// Accuracy study on the scaled model.
	trainDS, testDS := dataset.TrainTest(dataset.CIFAR10Like, 400, 150, 21)
	net := models.NewVGG13(3, 16, 10, rng.New(9))
	cfg := train.DefaultConfig()
	cfg.Epochs = 6
	cfg.LR = 0.03
	res := train.Run(net, trainDS, testDS, cfg)
	fmt.Printf("ANN accuracy: %.4f\n", res.TestAccuracy)

	conv, err := convert.Convert(net, trainDS, convert.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	const fullT = 120
	snnAcc := conv.Evaluate(testDS, fullT, 50, 3).Accuracy
	fmt.Printf("pure SNN accuracy at T=%d: %.4f\n\n", fullT, snnAcc)

	fmt.Println("hybrid sweep (accuracy at shrinking windows):")
	fmt.Println("  mode    t-steps  accuracy")
	type pt struct{ k, T int }
	for _, p := range []pt{{1, 100}, {2, 80}, {3, 60}, {4, 40}, {5, 30}} {
		m, err := hybrid.Split(conv, p.k)
		if err != nil {
			continue
		}
		acc := m.Evaluate(testDS, p.T, 50, 3)
		fmt.Printf("  Hyb-%d   %5d    %.4f\n", p.k, p.T, acc)
	}

	// Chip-level hybrid session: compile once in hybrid mode (spiking
	// front, digital accumulator at the cut, ANN tail) and stream a batch
	// through the programmed crossbars. The hardware demo uses the 3-layer
	// MLP — the VGG's position-multiplexed conv stages are far too slow
	// for an interactive example.
	fmt.Println("\nchip-level hybrid session (program-once / run-many, MLP):")
	mTr, mTe := dataset.TrainTest(dataset.MNISTLike, 300, 32, 5)
	mlp := models.NewMLP3(1, 16, 10, rng.New(7))
	mcfg := train.DefaultConfig()
	mcfg.Epochs = 5
	train.Run(mlp, mTr, mTe, mcfg)
	mconv, err := convert.Convert(mlp, mTr, convert.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	chip := arch.NewChip(device.DefaultParams(), crossbar.Config{}, nil)
	sess, err := chip.Compile(mconv,
		arch.WithMode(arch.ModeHybrid),
		arch.WithHybridSplit(1),
		arch.WithTimesteps(40),
		arch.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	imgs := make([]*tensor.Tensor, 16)
	labels := make([]int, 16)
	for i := range imgs {
		imgs[i], labels[i] = mTe.Sample(i)
	}
	results, err := sess.RunBatch(context.Background(), imgs)
	if err != nil {
		log.Fatal(err)
	}
	correct, spikes := 0, int64(0)
	for i, r := range results {
		if r.Prediction == labels[i] {
			correct++
		}
		spikes += r.Spikes
	}
	fmt.Printf("  Hyb-1 on hardware: %d/%d correct, %d spikes across the batch\n",
		correct, len(results), spikes)

	// Save the compiled session as a versioned chip image and rehydrate
	// it — no re-programming, no fault injection — then replay the batch.
	// A loaded session is interchangeable with the one that was saved:
	// the replay must agree bit for bit.
	var img bytes.Buffer
	if err := sess.SaveImage(&img); err != nil {
		log.Fatal(err)
	}
	loaded, err := arch.LoadSession(bytes.NewReader(img.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	replay, err := loaded.RunBatch(context.Background(), imgs)
	if err != nil {
		log.Fatal(err)
	}
	identical := true
	for i := range replay {
		if replay[i].Prediction != results[i].Prediction || replay[i].Spikes != results[i].Spikes {
			identical = false
		}
	}
	fmt.Printf("  saved %d-byte chip image; replay on loaded session identical = %v\n",
		img.Len(), identical)

	// Energy/power study on the full-size workload (Fig. 17).
	fmt.Println("\nfull-size VGG-13 energy/power (analytic model):")
	em := energy.NewModel()
	w := models.FullVGG13(10, 300, 91.60, 90.05)
	np := mapping.MapWorkload(w)
	act := energy.DefaultActivity(w, energy.DefaultInputRate)
	snn := em.SNNNetwork(np, w.Timesteps, act)
	ann := em.ANNNetwork(np)
	fmt.Printf("  SNN  (T=%d): E=%.1f µJ  P=%.2f mW\n", w.Timesteps, snn.EnergyJ*1e6, snn.AvgPowerW*1e3)
	for _, p := range []pt{{1, 250}, {2, 200}, {3, 150}, {4, 100}} {
		h := em.HybridNetwork(np, p.T, p.k, act)
		fmt.Printf("  Hyb-%d (T=%d): E=%.1f µJ  P=%.2f mW\n", p.k, p.T, h.EnergyJ*1e6, h.AvgPowerW*1e3)
	}
	fmt.Printf("  ANN        : E=%.1f µJ  P=%.2f mW\n", ann.EnergyJ*1e6, ann.AvgPowerW*1e3)
}
