// chipreport: the deployment view — map a trained model onto the chip,
// compile its per-core configuration, simulate routed NoC traffic, and
// replay a recorded spike trace through the energy model for an
// instantaneous power profile.
//
//	go run ./examples/chipreport
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/compiler"
	"repro/internal/convert"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/placement"
	"repro/internal/replay"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/train"
)

func main() {
	// Train a small LeNet and derive its hardware view.
	trainDS, testDS := dataset.TrainTest(dataset.MNISTLike, 300, 80, 17)
	net := models.NewLeNet5(1, 16, 10, rng.New(5))
	cfg := train.DefaultConfig()
	cfg.Epochs = 5
	train.Run(net, trainDS, testDS, cfg)

	w, err := models.FromNetwork("lenet5-scaled", net, 1, 16, 16)
	if err != nil {
		log.Fatal(err)
	}

	// Map, place and compile.
	np := mapping.MapWorkload(w)
	a, err := placement.Place(np, 14, 14)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := compiler.Compile(a)
	if err != nil {
		log.Fatal(err)
	}
	sched.Render(os.Stdout)
	cost := sched.ProgrammingCost(device.DefaultParams())
	fmt.Printf("  weight loading: %d writes, %.1f nJ\n\n", cost.Writes, cost.EnergyJ*1e9)

	// Routed NoC traffic vs the analytic mean-hop assumption.
	tr := a.SimulateTraffic(placement.ANNTraffic())
	fmt.Printf("NoC (ANN pass): %d packets, %.3f nJ, %.2f observed mean hops\n\n",
		tr.Stats.Packets, tr.EnergyJ()*1e9, tr.MeanHopsObserved)

	// Trace-driven power profile of one spiking inference.
	conv, err := convert.Convert(net, trainDS, convert.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	img, label := testDS.Sample(0)
	const T = 60
	res, trace := conv.SNN.RunTraced(img, T, snn.NewPoissonEncoder(1.0, rng.New(9)))
	fmt.Printf("traced inference: predicted %d (true %d)\n", res.Predict(), label)

	m := energy.NewModel()
	m.SNNParallelism = 1
	rep, err := replay.Replay(m, w, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace replay: %.3f µJ total, mean %.3f mW, peak step %.3f mW\n",
		rep.EnergyJ*1e6, rep.MeanPowerW*1e3, rep.PeakStepPowerW*1e3)
	fmt.Println("instantaneous power (one row per 4 timesteps):")
	for t := 0; t < T; t += 4 {
		bars := int(rep.StepPowerW[t] / rep.PeakStepPowerW * 40)
		if bars > 40 {
			bars = 40
		}
		fmt.Printf("  t=%3d %7.3f mW %s\n", t, rep.StepPowerW[t]*1e3, strings.Repeat("#", bars))
	}
}
