// snnconvert: a deep dive into the ANN→SNN conversion pipeline of §V-A.
//
// Trains LeNet-5 on a synthetic MNIST-like dataset and walks through each
// conversion concern the paper raises: quantization levels (Fig. 9),
// evidence-integration time (Table I), layer-wise spiking activity
// (Fig. 4), and ANN/SNN feature-map correlation (Fig. 10).
//
//	go run ./examples/snnconvert
package main

import (
	"fmt"
	"log"

	"repro/internal/convert"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/train"
)

func main() {
	trainDS, testDS := dataset.TrainTest(dataset.MNISTLike, 400, 150, 11)
	net := models.NewLeNet5(1, 16, 10, rng.New(3))
	cfg := train.DefaultConfig()
	cfg.Epochs = 6
	result := train.Run(net, trainDS, testDS, cfg)
	fmt.Printf("float ANN accuracy: %.4f\n\n", result.TestAccuracy)

	// Quantization sweep (Fig. 9): accuracy vs weight discretization.
	ranges := quant.Calibrate(net, trainDS, quant.DefaultCalibration())
	fmt.Println("weight levels vs accuracy (activations 4-bit):")
	for _, levels := range []int{2, 4, 8, 16, 32} {
		clone := models.NewLeNet5(1, 16, 10, rng.New(3))
		copyWeights(clone, net)
		qcfg := quant.Config{WeightLevels: levels, ActivationLevels: 16}
		quant.Apply(clone, ranges, qcfg)
		acc := quant.EvaluateQuantized(clone, testDS, ranges, qcfg, 32)
		fmt.Printf("  %2d levels: %.4f\n", levels, acc)
	}

	// Conversion and the evidence-integration trade-off (Table I).
	conv, err := convert.Convert(net, trainDS, convert.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSNN accuracy vs integration window:")
	for _, T := range []int{5, 10, 20, 40, 80, 160} {
		res := conv.Evaluate(testDS, T, 60, 5)
		fmt.Printf("  T=%3d: %.4f\n", T, res.Accuracy)
	}

	// Layer-wise spiking activity (Fig. 4).
	res := conv.Evaluate(testDS, 80, 40, 5)
	fmt.Println("\nlayer-wise spiking activity (spikes/neuron/timestep):")
	for i, a := range res.MeanActivity {
		fmt.Printf("  stage %d: %.4f\n", i+1, a)
	}

	// ANN/SNN correlation by depth and window (Fig. 10).
	fmt.Println("\nANN/SNN feature-map correlation:")
	short := conv.Correlation(testDS, 20, 10, 5)
	long := conv.Correlation(testDS, 160, 10, 5)
	fmt.Println("  stage   T=20     T=160")
	for i := range short {
		fmt.Printf("  %4d   %.4f   %.4f\n", i+1, short[i], long[i])
	}
}

// copyWeights copies trained parameters into a freshly built clone.
func copyWeights(dst, src *nn.Network) {
	dp, sp := dst.Params(), src.Params()
	for i := range dp {
		copy(dp[i].Value.Data(), sp[i].Value.Data())
	}
}
