// Quickstart: the shortest path through the NEBULA flow.
//
// Trains a small MLP on a synthetic MNIST-like dataset, quantizes it to
// the chip's 4-bit precision, converts it to a spiking network, and
// evaluates both operating modes — about fifteen seconds on a laptop.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/rng"
)

func main() {
	// 1. A simulator at the paper's operating point (DW-MTJ devices,
	//    Table III component powers, 4-bit precision).
	sim := core.New()

	// 2. Data and model: synthetic stand-ins for MNIST and the paper's
	//    3-layer MLP.
	trainDS, testDS := dataset.TrainTest(dataset.MNISTLike, 400, 150, 42)
	net := models.NewMLP3(1, 16, 10, rng.New(7))

	// 3. Train → calibrate → quantize → convert.
	cfg := core.DefaultPipelineConfig()
	cfg.Train.Epochs = 6
	pipe, err := sim.Build(net, trainDS, testDS, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Accuracy in both modes.
	fmt.Printf("quantized ANN accuracy: %.4f\n", pipe.EvaluateANN())
	res := pipe.EvaluateSNN(100, 80)
	fmt.Printf("converted SNN accuracy: %.4f over %d timesteps\n", res.Accuracy, res.Timesteps)

	// 5. Chip-level inference through the chip-image cache: the first
	//    compile maps, programs and protects the crossbars, then stores a
	//    versioned chip image keyed by the content hash of (model, chip
	//    environment, compile options). The second batch finds that image
	//    and rehydrates the chip from disk instead of re-programming —
	//    and reproduces the first batch's outputs bit for bit.
	cacheDir, err := os.MkdirTemp("", "nebula-image-cache-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	results, labels, err := pipe.RunBatchOnChip(context.Background(), 0, 8, 80, 0,
		arch.WithImageCache(cacheDir))
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, hw := range results {
		if hw.Prediction == labels[i] {
			correct++
		}
	}
	hw := results[0]
	fmt.Printf("chip-level inference: %d/%d correct; first image predicted %d (true %d), %d spikes, %d pipeline cycles\n",
		correct, len(results), hw.Prediction, labels[0], hw.Spikes, hw.Cycles)

	warm, _, err := pipe.RunBatchOnChip(context.Background(), 0, 8, 80, 0,
		arch.WithImageCache(cacheDir))
	if err != nil {
		log.Fatal(err)
	}
	identical := true
	for i := range warm {
		if warm[i].Prediction != results[i].Prediction || warm[i].Spikes != results[i].Spikes {
			identical = false
		}
	}
	fmt.Printf("warm rerun from cached chip image: outputs identical = %v\n", identical)

	// 6. Energy estimate for the full-size counterpart workload.
	w := models.FullMLP3()
	ann := sim.EstimateANN(w)
	snn := sim.EstimateSNN(w, w.Timesteps)
	fmt.Printf("full-size MLP: SNN uses %.1f× the energy at %.1f× less power than ANN mode\n",
		snn.EnergyJ/ann.EnergyJ, ann.AvgPowerW/snn.AvgPowerW)
}
