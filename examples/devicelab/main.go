// devicelab: a tour of the spintronic substrate — the DW-MTJ synapse and
// neuron devices of Fig. 1–2, an all-spin crossbar (Fig. 3), and a
// morphable super-tile aggregating a tall kernel in the current domain
// (Fig. 7).
//
//	go run ./examples/devicelab
package main

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func main() {
	p := device.DefaultParams()
	fmt.Printf("DW-MTJ device: %d states, ON/OFF ratio %.1f, %.0f fJ full write\n\n",
		p.States(), p.GParallelUS/p.GAntiParallelUS, p.WriteEnergyFJ)

	// Fig. 1(b): programming-current sweep.
	fmt.Println("device characteristic (displacement per 110ns pulse):")
	for _, pt := range device.Characteristic(p, -10, 10, 11) {
		fmt.Printf("  I=%+6.1f µA  ΔDW=%+7.2f nm  G=%5.1f µS\n",
			pt.CurrentUA, pt.DisplacementNM, pt.ConductanceUS)
	}

	// Fig. 2(a): the spiking neuron integrates and fires.
	fmt.Println("\nspiking neuron driven at constant current:")
	n := device.NewSpikingNeuron(p)
	for i := 1; i <= 20; i++ {
		fired := n.Integrate(6, p.PulseNS)
		if fired {
			fmt.Printf("  fired at cycle %d, wall reset to %.2f\n", i, n.Membrane())
		}
	}

	// Fig. 3: a small crossbar computes an analog dot product.
	r := rng.New(5)
	cb := crossbar.New(4, 3, p, crossbar.Config{}, nil)
	w := tensor.FromSlice([]float64{
		0.5, -0.25, 1.0,
		0.25, 0.75, -0.5,
		-1.0, 0.5, 0.25,
		0.75, -0.75, 0.5,
	}, 4, 3)
	if err := cb.Program(w, 1); err != nil {
		panic(err)
	}
	x := []float64{1, 0.5, 0.25, 0.75}
	got, _ := cb.MAC(x)
	fmt.Printf("\ncrossbar MAC of %v:\n  analog %v\n", x, got)
	fmt.Printf("  program energy: %.1f fJ over %d synapses\n",
		cb.Stats().ProgramEnergyFJ, 4*3)

	// Fig. 7: a super-tile aggregates a 600-row kernel across 5 stacked
	// crossbars without any ADC.
	st := arch.NewSuperTile(p, crossbar.Config{}, nil)
	tall := tensor.New(600, 64)
	for i := range tall.Data() {
		tall.Data()[i] = (2*r.Float64() - 1)
	}
	if err := st.Program(tall, 1); err != nil {
		panic(err)
	}
	input := make([]float64, 600)
	for i := range input {
		input[i] = r.Float64()
	}
	out, _ := st.Evaluate(input)
	fmt.Printf("\nsuper-tile: Rf=600 kernel at NU level %v, utilization %.3f\n",
		st.NULevel(), st.Utilization())
	fmt.Printf("  first column currents (weight units): %.3f %.3f %.3f ...\n",
		out[0], out[1], out[2])
}
