package repro

// Full-stack integration test: one model travels the entire flow the
// repository implements — train → calibrate → quantize → convert → dense
// SNN eval → event-driven eval → hybrid split → chip-level execution →
// shape derivation → mapping → placement → compiled schedule → routed NoC
// traffic → analytic energy → trace replay. Each stage's output feeds the
// next, so this test fails if any cross-package contract drifts.

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/event"
	"repro/internal/hybrid"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/placement"
	"repro/internal/replay"
	"repro/internal/rng"
	"repro/internal/snn"
)

func TestFullStackIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	// 1. Train + quantize + convert through the facade.
	sim := core.New()
	trainDS, testDS := dataset.TrainTest(dataset.MNISTLike, 400, 120, 2020)
	net := models.NewMLP3(1, 16, 10, rng.New(11))
	cfg := core.DefaultPipelineConfig()
	cfg.Train.Epochs = 6
	pipe, err := sim.Build(net, trainDS, testDS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	annAcc := pipe.EvaluateANN()
	if annAcc < 0.6 {
		t.Fatalf("ANN accuracy %v", annAcc)
	}

	// 2. Dense SNN evaluation.
	const T = 100
	snnRes := pipe.EvaluateSNN(T, 60)
	if snnRes.Accuracy < annAcc-0.25 {
		t.Fatalf("SNN accuracy %v vs ANN %v", snnRes.Accuracy, annAcc)
	}

	// 3. Event-driven engine agrees with the dense simulator.
	eng, err := event.FromConverted(pipe.Converted)
	if err != nil {
		t.Fatal(err)
	}
	img, label := testDS.Sample(0)
	evRes := eng.Run(img, T, snn.NewPoissonEncoder(1.0, rng.New(5)))
	dnRes := pipe.Converted.SNN.Run(img, T, snn.NewPoissonEncoder(1.0, rng.New(5)))
	if evRes.Predict() != dnRes.Predict() {
		t.Fatal("event and dense engines disagree")
	}

	// 4. Hybrid split classifies.
	hyb, err := hybrid.Split(pipe.Converted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc := hyb.Evaluate(testDS, T, 40, 7); acc < 0.5 {
		t.Fatalf("hybrid accuracy %v", acc)
	}

	// 5. Chip-level hardware execution.
	hwRes, hwLabel, err := pipe.RunOnChip(0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if hwRes.Spikes == 0 {
		t.Fatal("no hardware spikes")
	}
	if hwLabel != label {
		t.Fatalf("fixture mismatch: %d vs %d", hwLabel, label)
	}

	// 6. Shape derivation → mapping → placement → compile.
	w, err := models.FromNetwork("mlp3-scaled", pipe.ANN, 1, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	np := mapping.MapWorkload(w)
	assign, err := placement.Place(np, 14, 14)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := compiler.Compile(assign)
	if err != nil {
		t.Fatal(err)
	}
	if sched.TotalSynapses == 0 || len(sched.Programs) == 0 {
		t.Fatalf("empty schedule: %+v", sched)
	}

	// 7. Routed NoC traffic.
	traffic := assign.SimulateTraffic(placement.SNNTraffic(T, snnRes.MeanInputRate))
	if traffic.Stats.Packets == 0 || traffic.EnergyJ() <= 0 {
		t.Fatalf("no traffic: %+v", traffic)
	}

	// 8. Analytic energy for the derived workload, both modes.
	em := energy.NewModel()
	ann := em.ANNNetwork(np)
	snnE := em.SNNNetwork(np, T, energy.DefaultActivity(w, snnRes.MeanInputRate))
	if snnE.EnergyJ <= ann.EnergyJ {
		t.Fatalf("SNN energy %v not above ANN %v at T=%d", snnE.EnergyJ, ann.EnergyJ, T)
	}
	if snnE.AvgPowerW >= ann.AvgPowerW {
		t.Fatalf("SNN power %v not below ANN %v", snnE.AvgPowerW, ann.AvgPowerW)
	}

	// 9. Trace replay through the same workload shapes.
	_, tr := pipe.Converted.SNN.RunTraced(img, T, snn.NewPoissonEncoder(1.0, rng.New(9)))
	em2 := energy.NewModel()
	em2.SNNParallelism = 1
	rep, err := replay.Replay(em2, w, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EnergyJ <= 0 || len(rep.StepPowerW) != T {
		t.Fatalf("degenerate replay: %+v", rep)
	}

	// 10. The conversion metadata stays internally consistent.
	var weighted int
	for _, st := range pipe.Converted.Stages {
		if st.Weighted {
			weighted++
		}
	}
	if weighted != len(np.Placements) {
		t.Fatalf("stage/placement mismatch: %d vs %d", weighted, len(np.Placements))
	}
	_ = convert.DefaultConfig()
}
