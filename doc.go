// Package repro is a from-scratch Go reproduction of "NEBULA: A
// Neuromorphic Spin-Based Ultra-Low Power Architecture for SNNs and ANNs"
// (Singh et al., ISCA 2020).
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results. The public entry point is
// repro/internal/core; bench_test.go regenerates every table and figure.
package repro
