package repro

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section, plus the ablation studies called out in
// DESIGN.md. Each benchmark regenerates its experiment and reports the
// experiment's headline number as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Analytic experiments run in
// milliseconds; trained-model experiments (Table I/II, Figs. 4/9/10 and
// the noise study) train the scaled benchmarks inside the first iteration.

import (
	"context"
	"io"
	"runtime"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/models"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// discard renders a result to devnull so rendering code is exercised too.
func discard(r interface{ Render(io.Writer) }) { r.Render(io.Discard) }

func BenchmarkFig1_DeviceCharacteristic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1DeviceCharacteristic()
		discard(r)
		b.ReportMetric(r.Points[len(r.Points)-1].DisplacementNM, "maxΔDW_nm")
	}
}

func BenchmarkFig4_SpikingActivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4SpikingActivity(10)
		if err != nil {
			b.Fatal(err)
		}
		discard(r)
		b.ReportMetric(r.Activity[0], "layer1_rate")
	}
}

func BenchmarkFig9_QuantizationSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9QuantizationSweep()
		discard(r)
		// Headline: accuracy at the chip's 16-level operating point.
		for _, p := range r.Points {
			if p.Levels == 16 {
				b.ReportMetric(p.Accuracy, "acc@16lv")
				break
			}
		}
	}
}

func BenchmarkFig10_Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10Correlation(6)
		if err != nil {
			b.Fatal(err)
		}
		discard(r)
		b.ReportMetric(r.CorrLongT[len(r.CorrLongT)-1], "deep_corr")
	}
}

func BenchmarkTableI_Conversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableIConversion(15)
		if err != nil {
			b.Fatal(err)
		}
		discard(r)
		var minGap float64 = 1
		for _, row := range r.Rows {
			if gap := row.ANNAccuracy - row.SNNAccuracy; gap < minGap {
				minGap = gap
			}
		}
		b.ReportMetric(minGap, "min_acc_gap")
	}
}

func BenchmarkTableII_Hybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableIIHybrid(15)
		if err != nil {
			b.Fatal(err)
		}
		discard(r)
		b.ReportMetric(float64(len(r.Rows)), "rows")
	}
}

func BenchmarkTableIII_Components(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableIIIComponents()
		discard(r)
		b.ReportMetric(r.Spec.ChipPowerW(), "chip_W")
	}
}

func BenchmarkFig12_ISAACLayerwise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12ISAACLayerwise()
		discard(r)
		b.ReportMetric(r.Series[0].Mean, "alexnet_ratio")
		b.ReportMetric(r.Series[1].Mean, "mobilenet_ratio")
	}
}

func BenchmarkFig13a_ISAACAverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13aISAACAverage()
		discard(r)
		sum := 0.0
		for _, row := range r.Rows {
			sum += row.Ratio
		}
		b.ReportMetric(sum/float64(len(r.Rows)), "mean_ratio")
	}
}

func BenchmarkFig13b_INXSLayerwise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13bINXSLayerwise()
		discard(r)
		b.ReportMetric(r.Mean, "inxs_ratio")
	}
}

func BenchmarkFig14_PeakPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14PeakPower()
		discard(r)
		max := 0.0
		for _, s := range r.Series {
			if s.Max > max {
				max = s.Max
			}
		}
		b.ReportMetric(max, "max_peak_ratio")
	}
}

func BenchmarkFig15_Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15ComponentBreakdownVGG()
		discard(r)
		b.ReportMetric(r.TotalSNN.SRAM+r.TotalSNN.EDRAM, "snn_mem_share")
	}
}

func BenchmarkFig16_BreakdownAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16ComponentBreakdownAll()
		discard(r)
		b.ReportMetric(float64(len(r.SNN)+len(r.ANN)), "rows")
	}
}

func BenchmarkFig17_HybridStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig17HybridStudy()
		discard(r)
		// Headline: VGG SNN/ANN energy ratio.
		for _, s := range r.Series {
			if s.Model == "vgg13-cifar10" {
				last := s.Points[len(s.Points)-1]
				b.ReportMetric(1/last.EnergyVsSNN, "vgg_snn_over_ann_energy")
			}
		}
	}
}

func BenchmarkNoise_Resilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.NoiseResilience(15, 2)
		if err != nil {
			b.Fatal(err)
		}
		discard(r)
		b.ReportMetric(r.CleanANN-r.NoisyANN, "ann_acc_drop")
	}
}

// --- Ablation benches (DESIGN.md §5) ---

func BenchmarkAblation_NUHierarchyVsADC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationNUHierarchy()
		discard(r)
		b.ReportMetric(r.Rows[2].Value, "energy_ratio")
	}
}

func BenchmarkAblation_MorphableTiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationMorphableTiles()
		discard(r)
		b.ReportMetric(r.Rows[0].Value, "morphable_util")
	}
}

func BenchmarkAblation_MembraneStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationMembraneStorage()
		discard(r)
		b.ReportMetric(r.Rows[2].Value, "energy_ratio")
	}
}

func BenchmarkAblation_BitSerialInput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationBitSerialInput()
		discard(r)
		b.ReportMetric(r.Rows[2].Value, "energy_ratio")
	}
}

func BenchmarkAblation_HybridSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationHybridSplit()
		discard(r)
		b.ReportMetric(r.Rows[0].Value/r.Rows[len(r.Rows)-1].Value, "shallow_over_deep")
	}
}

func BenchmarkAblation_ISAACADCScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationISAACADCScaling()
		discard(r)
		b.ReportMetric(r.Rows[len(r.Rows)-1].Value/r.Rows[0].Value, "sensitivity_span")
	}
}

func BenchmarkSensitivity_SNNvsANN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.SensitivitySNNvsANN()
		discard(r)
		max := 0.0
		for _, row := range r.Rows {
			if row.Span > max {
				max = row.Span
			}
		}
		b.ReportMetric(max, "max_knob_span")
	}
}

func BenchmarkSensitivity_Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.SensitivityBaselines()
		discard(r)
		b.ReportMetric(r.Rows[0].Span, "isaac_adc_span")
	}
}

func BenchmarkPowerProfile_TraceReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.PowerProfile(60)
		if err != nil {
			b.Fatal(err)
		}
		discard(r)
		b.ReportMetric(r.PeakStepPowerW/r.MeanPowerW, "peak_over_mean")
	}
}

func BenchmarkFaultResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.FaultResilience(10, 50)
		if err != nil {
			b.Fatal(err)
		}
		discard(r)
		none := r.Curve(reliability.ProtectNone).Points
		b.ReportMetric(none[0].Accuracy-none[len(none)-1].Accuracy, "acc_drop_at_20pct")
		sr := r.Curve(reliability.ProtectSpareRemap).Points
		b.ReportMetric(none[0].Accuracy-sr[3].Accuracy, "protected_gap_at_5pct")
	}
}

// --- Session-engine throughput (program-once / run-many, ISSUE 3) ---

// Shared compiled-session fixture: the MLP workload trained once, plus a
// 32-image batch. Building it inside the first iteration would swamp the
// throughput numbers.
var (
	sessOnce sync.Once
	sessPipe *core.Pipeline
	sessImgs []*tensor.Tensor
)

func sessionFixture(b testing.TB) (*core.Pipeline, []*tensor.Tensor) {
	b.Helper()
	sessOnce.Do(func() {
		sim := core.New()
		tr, te := dataset.TrainTest(dataset.MNISTLike, 400, 32, 77)
		net := models.NewMLP3(1, 16, 10, rng.New(5))
		p, err := sim.Build(net, tr, te, core.DefaultPipelineConfig())
		if err != nil {
			panic(err)
		}
		sessPipe = p
		sessImgs = make([]*tensor.Tensor, 32)
		for i := range sessImgs {
			sessImgs[i], _ = te.Sample(i)
		}
	})
	return sessPipe, sessImgs
}

// benchmarkSession streams the fixture batch through one compiled session
// at the given parallelism and reports throughput. Identical seeds make
// every variant's outputs bitwise equal (asserted by the race-enabled
// tests in internal/arch); here only the clock differs.
func benchmarkSession(b *testing.B, parallelism int) {
	pipe, imgs := sessionFixture(b)
	sess, err := pipe.CompileChip(40, parallelism)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	images := 0
	for i := 0; i < b.N; i++ {
		res, err := sess.RunBatch(ctx, imgs)
		if err != nil {
			b.Fatal(err)
		}
		images += len(res)
	}
	b.StopTimer()
	b.ReportMetric(float64(images)/b.Elapsed().Seconds(), "img/s")
}

// TestSessionSteadyStateAllocs pins the engine hot loop's allocation
// budget. The seed engine allocated 52969 times per 32-image batch
// (MAC outputs, spike vectors, im2col unfolds and read-out increments
// were fresh slices every timestep); the frozen-kernel engine reuses
// arena-held scratch and sits near 25k, dominated by the per-timestep
// Poisson encoder. The ceiling is generous — sync.Pool may be drained
// by a GC mid-measurement — but far below the seed count, so a
// reintroduced per-timestep allocation in a step function fails here.
func TestSessionSteadyStateAllocs(t *testing.T) {
	pipe, imgs := sessionFixture(t)
	sess, err := pipe.CompileChip(40, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	run := func() {
		if _, err := sess.RunBatch(ctx, imgs); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the arena so steady state is what gets measured
	avg := testing.AllocsPerRun(3, run)
	const ceiling = 40000
	if avg > ceiling {
		t.Fatalf("RunBatch allocated %.0f times per %d-image batch, ceiling %d (seed engine: 52969)",
			avg, len(imgs), ceiling)
	}
}

func BenchmarkSession_Sequential(b *testing.B) { benchmarkSession(b, 1) }
func BenchmarkSession_Parallel4(b *testing.B)  { benchmarkSession(b, 4) }
func BenchmarkSession_ParallelNumCPU(b *testing.B) {
	benchmarkSession(b, runtime.NumCPU())
}

// benchmarkSessionSparse is benchmarkSession at a controlled input
// activity: every pixel carries the target activity as its intensity
// and a gain-1 Poisson encoder turns that into Bernoulli spike planes
// of that expected density — the low-rate regime the event-driven
// stepping engine exists for (BENCH_sparse.json sweeps the same knob
// against the dense walk).
func benchmarkSessionSparse(b *testing.B, activity float64) {
	pipe, imgs0 := sessionFixture(b)
	imgs := make([]*tensor.Tensor, len(imgs0))
	for i := range imgs {
		img := tensor.New(imgs0[i].Shape()...)
		d := img.Data()
		for j := range d {
			d[j] = activity
		}
		imgs[i] = img
	}
	sess, err := pipe.CompileChip(40, 1, arch.WithEncoder(func(r *rng.Rand) snn.Encoder {
		return snn.NewPoissonEncoder(1.0, r)
	}))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	images := 0
	for i := 0; i < b.N; i++ {
		res, err := sess.RunBatch(ctx, imgs)
		if err != nil {
			b.Fatal(err)
		}
		images += len(res)
	}
	b.StopTimer()
	b.ReportMetric(float64(images)/b.Elapsed().Seconds(), "img/s")
}

func BenchmarkSession_Sparse10(b *testing.B) { benchmarkSessionSparse(b, 0.10) }
func BenchmarkSession_Sparse1(b *testing.B)  { benchmarkSessionSparse(b, 0.01) }
