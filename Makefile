GO ?= go

.PHONY: build test race lint fmt-check smoke bench-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/nebula-lint ./...

# Fast reliability smoke: the full three-curve fault study at tiny scale
# (injection, BIST, write-verify, sparing, degradation accounting).
smoke:
	$(GO) test ./internal/experiments -run TestFaultResilienceSmoke -count=1

# Session-engine throughput smoke: one iteration of every BenchmarkSession
# variant under the race detector — catches data races in the concurrent
# batch engine without paying for a full benchmark run.
bench-smoke:
	$(GO) test -race -run '^$$' -bench BenchmarkSession -benchtime 1x .

verify: build fmt-check lint test race smoke bench-smoke
