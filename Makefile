GO ?= go

.PHONY: build test race lint fmt-check verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/nebula-lint ./...

verify: build fmt-check lint test race
