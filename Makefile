GO ?= go

# Minimum total statement coverage enforced by `make cover` (percent).
# Measured at 74.7% when the gate was introduced and 76.9% when the
# flow-analysis lint suite landed; raise as tests grow, never lower it
# to make a build pass.
COVER_FLOOR ?= 76.0

.PHONY: build test race lint flow-lint fmt-check smoke bench-smoke chaos-smoke serve-smoke cover obs-check kernel-check image-check sparse-check verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/nebula-lint ./...

# Explicit gate on the type-aware flow analyzers (DESIGN.md §11): the
# kernel-invalidation, hot-path-allocation and context-propagation
# contracts must hold with zero unsuppressed error findings. The full
# lint run covers these too; this target isolates them so a CI failure
# names the violated contract.
flow-lint:
	$(GO) run ./cmd/nebula-lint -rules genstamp,hotalloc,ctxflow -format json ./... > /dev/null
	@echo "flow invariants hold: genstamp, hotalloc, ctxflow"

# Fast reliability smoke: the full three-curve fault study at tiny scale
# (injection, BIST, write-verify, sparing, degradation accounting).
smoke:
	$(GO) test ./internal/experiments -run TestFaultResilienceSmoke -count=1

# Session-engine throughput smoke: one iteration of every BenchmarkSession
# variant under the race detector — catches data races in the concurrent
# batch engine without paying for a full benchmark run.
bench-smoke:
	$(GO) test -race -run '^$$' -bench BenchmarkSession -benchtime 1x .

# Resilience chaos smoke: one seeded fault storm at smoke scale under
# the race detector — routing, online scrub, retirement, recompile and
# bitwise-deterministic retry all exercised in seconds (DESIGN.md §12).
chaos-smoke:
	$(GO) test -race -count=1 ./internal/experiments -run TestResilienceSmoke
	$(GO) test -race -count=1 ./internal/fleet

# Serving-tier smoke: the dynamic-batching frontend under the race
# detector — coalescing, backpressure, graceful drain, per-request
# deadlines and bitwise determinism across batch shapes (DESIGN.md §14).
serve-smoke:
	$(GO) test -race -count=1 ./internal/serve
	$(GO) test -race -count=1 ./internal/experiments -run TestServeSmoke

# Coverage gate: fails if total statement coverage drops below
# COVER_FLOOR. Writes coverage.out and a browsable coverage.html.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -html=coverage.out -o coverage.html
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t + 0 < f + 0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Observability determinism gate: the exported counter record must be
# bitwise identical between a sequential and a parallel run of the same
# batch — the shard-merge contract of internal/obs (DESIGN.md §9).
# The record embeds the full obs snapshot, so the event-driven skip
# counters (silent_stage_skips, spikes_skipped, packed_words,
# repeat_reads) are byte-diffed across parallelism here too.
obs-check:
	$(GO) run ./cmd/nebula-bench -exp obs -parallel 1 -obsout BENCH_obs_seq.json
	$(GO) run ./cmd/nebula-bench -exp obs -parallel 4 -obsout BENCH_obs.json
	cmp BENCH_obs_seq.json BENCH_obs.json
	@echo "obs snapshots bitwise identical across parallelism"

# Frozen-kernel equivalence gate: the differential fuzz suite proving the
# baked read kernels are bitwise identical to the dense reference, plus
# the session-level kernel-on/kernel-off comparison, under the race
# detector (DESIGN.md §10).
kernel-check:
	$(GO) test -race -count=1 ./internal/crossbar -run 'TestMACReadKernel|TestKernelInvalidation|TestKernelFresh|TestMACReadPacked'
	$(GO) test -race -count=1 ./internal/arch -run 'TestSessionFrozenKernel|TestCompileBakesKernels|TestWearSessionSkipsBake'
	@echo "frozen kernels bitwise identical to the dense reference"

# Event-driven identity gate (DESIGN.md §15): the packed-plane property
# suite, the session-level event-vs-dense bitwise comparisons at
# parallelism 1/4/NumCPU under the race detector, and the sparsity
# study itself, which errors unless every activity level (1%, 10%,
# 50%, dense) is bitwise identical between the event and dense walks.
# Writes BENCH_sparse.json with the speedups and skip counters.
sparse-check:
	$(GO) test -race -count=1 ./internal/spikeplane
	$(GO) test -race -count=1 ./internal/arch -run 'TestSessionEventDriven|TestSuperTileEvaluateReadPacked'
	$(GO) run ./cmd/nebula-bench -exp sparse
	@echo "event-driven stepping bitwise identical to the dense walk"

# Chip-image determinism gate (DESIGN.md §13): two compiles of the same
# model and options must emit byte-identical images, a session loaded
# from an image must re-save to the exact same bytes, and loaded
# sessions must reproduce compiled outputs and obs snapshots bit for
# bit, under the race detector.
image-check:
	$(GO) test -race -count=1 ./internal/arch -run 'TestImageByteIdenticalAcrossCompiles|TestImageStableAcrossLoad|TestImageRoundTripBitwise'
	$(GO) test -race -count=1 ./internal/image
	@echo "chip images byte-deterministic; loaded sessions bitwise identical"

verify: build fmt-check lint flow-lint test race smoke bench-smoke chaos-smoke serve-smoke cover obs-check kernel-check image-check sparse-check
